"""Observability wired through the serving stack, end to end.

Three layers, matching how a query actually travels:

* the single-engine :class:`QueryService` — ``query`` roots with stage
  children and disk events;
* the in-process replicated sharded service under injected disk errors —
  one connected tree per query with retried ``shard_task`` spans;
* the acceptance scenario — a process-fleet query that survives a
  SIGKILLed worker (retry + hedge + replica failover) must come back as
  ONE connected span tree whose shard-task spans carry
  shard/replica/attempt/hedge/breaker attributes, with the worker-side
  spans adopted across the process boundary.
"""

import copy
import os

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import GATSearchEngine
from repro.faults import FaultInjector, FaultRule, kill_fleet_workers
from repro.index.gat.index import GATConfig, GATIndex
from repro.obs import Observability, parse_prometheus_text, validate_spans
from repro.service import QueryService
from repro.shard import (
    FaultPolicy,
    ReplicatedShardedService,
    ShardedGATIndex,
)
from repro.storage.disk import SimulatedDisk

CONFIG = GATConfig(depth=4, memory_levels=3)
K = 5
N_SHARDS = 2


@pytest.fixture()
def db(tiny_db):
    return copy.deepcopy(tiny_db)


@pytest.fixture()
def queries(db):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=17)
    )
    return gen.queries(3)


def _records(obs):
    """Drain the tracer into validated plain dicts."""
    return validate_spans([s.to_dict() for s in obs.tracer.drain()])


# ----------------------------------------------------------------------
# Single-engine QueryService
# ----------------------------------------------------------------------
class TestQueryServiceTracing:
    def test_query_span_with_stage_children_and_disk_events(self, db, queries):
        obs = Observability.enabled()
        index = GATIndex.build(db, CONFIG)
        with QueryService(
            GATSearchEngine(index), result_cache_size=0, obs=obs
        ) as service:
            response = service.search(queries[0], k=K)
        records = _records(obs)
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "query"
        root = roots[0]
        assert root["attrs"]["k"] == K
        assert root["attrs"]["rounds"] == response.stats.rounds
        assert root["attrs"]["disk_reads"] == response.stats.disk_reads
        stages = {r["name"] for r in records if r["parent_id"] == root["span_id"]}
        assert {"retrieve", "validate", "score"} <= stages
        disk_events = [
            ev
            for r in records
            for ev in r["events"]
            if ev["name"].startswith("disk_read")
        ]
        assert disk_events, "bound disks must attach read events to spans"
        assert {r["trace_id"] for r in records} == {root["trace_id"]}

    def test_cache_hit_marks_the_span_and_skips_stages(self, db, queries):
        obs = Observability.enabled()
        index = GATIndex.build(db, CONFIG)
        with QueryService(
            GATSearchEngine(index), result_cache_size=8, obs=obs
        ) as service:
            service.search(queries[0], k=K)
            service.search(queries[0], k=K)
        roots = [r for r in _records(obs) if r["parent_id"] is None]
        assert len(roots) == 2
        assert "cache_hit" not in roots[0]["attrs"]
        assert roots[1]["attrs"]["cache_hit"] is True
        snap = obs.metrics_snapshot()
        assert snap["repro_result_cache_hits_total"] == 1.0
        assert snap["repro_result_cache_lookups_total"] == 2.0

    def test_disabled_tracer_collects_metrics_but_no_spans(self, db, queries):
        obs = Observability.disabled()
        index = GATIndex.build(db, CONFIG)
        with QueryService(
            GATSearchEngine(index), result_cache_size=0, obs=obs
        ) as service:
            service.search_many(queries, k=K)
        assert obs.tracer.spans() == []
        samples = parse_prometheus_text(obs.prometheus())
        assert samples["repro_queries_total"] == float(len(queries))
        assert samples["repro_query_latency_seconds_count"] == float(len(queries))
        assert samples["repro_disk_reads_total"] > 0


# ----------------------------------------------------------------------
# In-process sharded fan-out under injected faults
# ----------------------------------------------------------------------
class TestShardedTracing:
    def test_faulted_query_yields_one_connected_tree(self, db, queries):
        obs = Observability.enabled()
        # The first read on every shard's disk errors: each primary
        # attempt dies and the supervisor retries through the router.
        sharded = ShardedGATIndex.build(
            db,
            n_shards=N_SHARDS,
            config=CONFIG,
            disk_factory=lambda: SimulatedDisk(
                fault_injector=FaultInjector(FaultRule(error_rate=1.0, max_errors=1))
            ),
        )
        with sharded:
            with ReplicatedShardedService(
                sharded,
                executor="thread",
                n_replicas=2,
                fault_policy=FaultPolicy(max_retries=2),
                result_cache_size=0,
                obs=obs,
            ) as service:
                response = service.search(queries[0], k=K)
                stats = service.stats()
        assert response.complete
        assert stats.task_retries >= 1

        records = _records(obs)
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "query"
        root = roots[0]
        assert {r["trace_id"] for r in records} == {root["trace_id"]}
        assert root["attrs"]["complete"] is True
        assert root["attrs"]["shards_total"] == N_SHARDS

        shard_tasks = [r for r in records if r["name"] == "shard_task"]
        assert len(shard_tasks) >= N_SHARDS + stats.task_retries
        for rec in shard_tasks:
            assert rec["parent_id"] == root["span_id"]
            for attr in ("shard", "replica", "attempt", "hedge", "breaker"):
                assert attr in rec["attrs"], f"shard_task missing {attr!r}"
        assert {rec["attrs"]["shard"] for rec in shard_tasks} == set(range(N_SHARDS))
        assert any(rec["attrs"]["attempt"] >= 1 for rec in shard_tasks)
        # The injected errors surface as events on the failed attempts.
        fault_events = [
            ev
            for rec in shard_tasks
            for ev in rec["events"]
            if ev["name"] == "fault_error"
        ]
        assert len(fault_events) >= 1
        # Engine stages nest under the shard tasks they ran in.
        task_ids = {rec["span_id"] for rec in shard_tasks}
        stages = [r for r in records if r["name"] in ("retrieve", "validate", "score")]
        assert stages and all(r["parent_id"] in task_ids for r in stages)

    def test_obs_none_service_stays_untraced(self, db, queries):
        sharded = ShardedGATIndex.build(db, n_shards=N_SHARDS, config=CONFIG)
        with sharded:
            with ReplicatedShardedService(
                sharded, executor="thread", n_replicas=2, result_cache_size=0
            ) as service:
                response = service.search(queries[0], k=K)
        assert response.complete  # the default path carries zero obs state


# ----------------------------------------------------------------------
# Acceptance: process fleet, killed worker, retry + hedge + failover
# ----------------------------------------------------------------------
class TestProcessFleetAcceptance:
    def test_killed_fleet_query_produces_one_connected_tree(self, db, queries):
        obs = Observability.enabled()
        sharded = ShardedGATIndex.build(
            db, n_shards=N_SHARDS, config=CONFIG, store="shared"
        )
        try:
            with ReplicatedShardedService(
                sharded,
                executor="process",
                n_replicas=2,
                fault_policy=FaultPolicy(max_retries=2, hedge_after_s=0.005),
                result_cache_size=0,
                obs=obs,
            ) as service:
                executor = service._executor
                executor.warm_up()
                kill_fleet_workers(executor, count=1, seed=11)
                response = service.search(queries[0], k=K)
                stats = service.stats()
            assert response.complete
            assert executor.pool_repairs >= 1, "the kill must break the pool"
            assert stats.task_retries >= 1, "dead futures must be retried"
            # The healed pool rebuilds worker engines from the spec, which
            # dwarfs the 5ms hedge delay: the retry gets hedged.
            assert stats.task_hedges >= 1
        finally:
            sharded.close()

        records = _records(obs)
        # ONE connected tree: a single trace, a single query root, every
        # span transitively reaching it.
        assert len({r["trace_id"] for r in records}) == 1
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "query"
        root = roots[0]
        by_id = {r["span_id"]: r for r in records}
        for rec in records:
            node = rec
            for _ in range(len(records)):
                if node["parent_id"] is None:
                    break
                node = by_id[node["parent_id"]]
            assert node is root, f"span {rec['span_id']} not connected to root"

        shard_tasks = [r for r in records if r["name"] == "shard_task"]
        assert {rec["attrs"]["shard"] for rec in shard_tasks} == set(range(N_SHARDS))
        for rec in shard_tasks:
            attrs = rec["attrs"]
            for attr in ("shard", "replica", "attempt", "hedge", "breaker"):
                assert attr in attrs, f"shard_task missing {attr!r}: {attrs}"
            assert rec["parent_id"] == root["span_id"]
        # A failed original attempt cannot win its shard, so with
        # task_retries >= 1 at least one winner is a re-submission: a
        # rerouted retry (attempt >= 1) or a hedge launched before the
        # failure was recorded (hedge=True, attempt still 0).
        assert any(
            rec["attrs"]["attempt"] >= 1 or rec["attrs"]["hedge"]
            for rec in shard_tasks
        )
        # Worker provenance: the spans crossed the process boundary.
        worker_pids = {rec["attrs"].get("pid") for rec in shard_tasks}
        assert worker_pids and os.getpid() not in worker_pids

        samples = parse_prometheus_text(obs.prometheus())
        assert samples["repro_queries_total"] == 1.0
        assert samples["repro_task_retries_total"] >= 1.0
        assert samples["repro_task_hedges_total"] >= 1.0
