"""Unit tests for the Frontier structure and Algorithm 2's lower bound."""

import math

import pytest

from repro.core.lower_bound import Frontier, lower_bound_distance
from repro.core.query import Query, QueryPoint
from repro.geometry.grid import HierarchicalGrid
from repro.index.gat.hicl import HICL
from repro.model.database import TrajectoryDatabase

INF = math.inf


class TestFrontier:
    def test_sorted_insertion(self):
        f = Frontier()
        f.add(3.0, 2, 10)
        f.add(1.0, 2, 11)
        f.add(2.0, 3, 12)
        assert [e[0] for e in f.nearest(3)] == [1.0, 2.0, 3.0]

    def test_remove_present(self):
        f = Frontier()
        f.add(1.0, 2, 10)
        f.add(2.0, 2, 11)
        f.remove(1.0, 2, 10)
        assert len(f) == 1
        assert f.nearest(1)[0][2] == 11

    def test_remove_absent_is_noop(self):
        f = Frontier()
        f.add(1.0, 2, 10)
        f.remove(9.0, 9, 99)
        assert len(f) == 1

    def test_mth_distance(self):
        f = Frontier()
        for i in range(5):
            f.add(float(i), 1, i)
        assert f.mth_distance(3) == 2.0
        assert f.mth_distance(5) == 4.0
        assert f.mth_distance(6) == INF

    def test_bool(self):
        f = Frontier()
        assert not f
        f.add(1.0, 1, 0)
        assert f


class TestLowerBound:
    @pytest.fixture
    def setup(self):
        db = TrajectoryDatabase.from_raw(
            [[(1.0, 1.0, ["a"]), (9.0, 9.0, ["b"])]]
        )
        grid = HierarchicalGrid(db.bounding_box, depth=3)
        hicl = HICL.build(db, grid, memory_levels=3)
        return db, grid, hicl

    def test_empty_frontier_is_infinite(self, setup):
        db, grid, hicl = setup
        a = db.vocabulary.id_of("a")
        query = Query([QueryPoint(1.0, 1.0, frozenset({a}))])
        assert lower_bound_distance(query, {0: Frontier()}, hicl, m=4) == INF

    def test_single_covering_cell(self, setup):
        db, grid, hicl = setup
        a = db.vocabulary.id_of("a")
        query = Query([QueryPoint(1.0, 1.0, frozenset({a}))])
        leaf = grid.locate_leaf((1.0, 1.0))
        f = Frontier()
        f.add(2.5, leaf.level, leaf.code)
        # One cell covering 'a' at mdist 2.5 -> contribution 2.5.
        assert lower_bound_distance(query, {0: f}, hicl, m=4) == pytest.approx(2.5)

    def test_cap_by_mth_cell(self, setup):
        db, grid, hicl = setup
        a = db.vocabulary.id_of("a")
        b = db.vocabulary.id_of("b")
        # Query wants both a and b; frontier holds one a-cell and one b-cell.
        query = Query([QueryPoint(1.0, 1.0, frozenset({a, b}))])
        leaf_a = grid.locate_leaf((1.0, 1.0))
        leaf_b = grid.locate_leaf((9.0, 9.0))
        f = Frontier()
        f.add(1.0, leaf_a.level, leaf_a.code)
        f.add(4.0, leaf_b.level, leaf_b.code)
        # Virtual cover: a@1.0 + b@4.0 = 5.0, capped by m-th (=2nd) cell 4.0.
        assert lower_bound_distance(query, {0: f}, hicl, m=2) == pytest.approx(4.0)

    def test_uncoverable_virtual_with_few_cells_is_inf(self, setup):
        db, grid, hicl = setup
        a = db.vocabulary.id_of("a")
        b = db.vocabulary.id_of("b")
        query = Query([QueryPoint(1.0, 1.0, frozenset({a, b}))])
        leaf_a = grid.locate_leaf((1.0, 1.0))
        f = Frontier()
        f.add(1.0, leaf_a.level, leaf_a.code)  # only covers 'a'
        # Fewer cells than m and no way to cover b -> inf (sound: frontier
        # is the complete unvisited region).
        assert lower_bound_distance(query, {0: f}, hicl, m=4) == INF

    def test_sums_over_query_points(self, setup):
        db, grid, hicl = setup
        a = db.vocabulary.id_of("a")
        b = db.vocabulary.id_of("b")
        query = Query(
            [
                QueryPoint(1.0, 1.0, frozenset({a})),
                QueryPoint(9.0, 9.0, frozenset({b})),
            ]
        )
        leaf_a = grid.locate_leaf((1.0, 1.0))
        leaf_b = grid.locate_leaf((9.0, 9.0))
        fa, fb = Frontier(), Frontier()
        fa.add(1.5, leaf_a.level, leaf_a.code)
        fb.add(2.5, leaf_b.level, leaf_b.code)
        got = lower_bound_distance(query, {0: fa, 1: fb}, hicl, m=4)
        assert got == pytest.approx(4.0)
