"""Unit tests for the GAT search engine (Algorithm 1)."""

import math

import pytest

from repro.core.engine import GATSearchEngine
from repro.core.evaluator import MatchEvaluator
from repro.core.query import Query, QueryPoint
from repro.index.gat.index import GATConfig, GATIndex


@pytest.fixture(scope="module")
def engine(small_db):
    index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
    return GATSearchEngine(index)


def _query_from(db, rng_seed=0, nq=2, na=2):
    import random

    rng = random.Random(rng_seed)
    while True:
        tr = db.trajectories[rng.randrange(len(db))]
        pts = [p for p in tr if p.activities]
        if len(pts) >= nq:
            qps = []
            for p in rng.sample(pts, nq):
                acts = rng.sample(sorted(p.activities), min(na, len(p.activities)))
                qps.append(QueryPoint(p.x, p.y, frozenset(acts)))
            return Query(qps)


class TestParameters:
    def test_bad_batch_rejected(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=4, memory_levels=4))
        with pytest.raises(ValueError):
            GATSearchEngine(index, retrieval_batch=0)
        with pytest.raises(ValueError):
            GATSearchEngine(index, lb_cells=0)


class TestATSQ:
    def test_results_sorted_and_distinct(self, engine, small_db):
        q = _query_from(small_db, 1)
        results = engine.atsq(q, k=5)
        dists = [r.distance for r in results]
        assert dists == sorted(dists)
        ids = [r.trajectory_id for r in results]
        assert len(ids) == len(set(ids))

    def test_matches_exhaustive_scan(self, engine, small_db):
        """The engine's top-k distances must equal a brute-force scan."""
        ev = MatchEvaluator()
        for seed in range(5):
            q = _query_from(small_db, seed)
            brute = sorted(
                ev.dmm(q, tr) for tr in small_db if not math.isinf(ev.dmm(q, tr))
            )[:5]
            got = [r.distance for r in engine.atsq(q, k=5)]
            assert got == pytest.approx(brute)

    def test_distances_verifiable(self, engine, small_db):
        ev = MatchEvaluator()
        q = _query_from(small_db, 3)
        for r in engine.atsq(q, k=3):
            assert r.distance == pytest.approx(ev.dmm(q, small_db.get(r.trajectory_id)))

    def test_k_larger_than_matches(self, engine, small_db):
        q = _query_from(small_db, 4)
        results = engine.atsq(q, k=10_000)
        assert all(not math.isinf(r.distance) for r in results)

    def test_explain_returns_matches(self, engine, small_db):
        q = _query_from(small_db, 5)
        results = engine.atsq(q, k=2, explain=True)
        for r in results:
            assert r.matches is not None
            assert len(r.matches) == len(q)
            tr = small_db.get(r.trajectory_id)
            for qp, match in zip(q, r.matches):
                covered = set()
                for pos in match:
                    covered |= tr[pos].activities
                assert qp.activities <= covered

    def test_stats_populated(self, small_db):
        # A fresh engine so the shared HICL/APL caches are cold — disk
        # reads on a warm engine can legitimately drop to zero.
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        fresh = GATSearchEngine(index)
        q = _query_from(small_db, 6)
        fresh.atsq(q, k=3)
        assert fresh.stats.rounds >= 1
        assert fresh.stats.cells_popped > 0
        assert fresh.stats.candidates_retrieved > 0
        assert fresh.stats.disk_reads > 0  # APL fetches at minimum


class TestOATSQ:
    def test_matches_exhaustive_scan(self, engine, small_db):
        ev = MatchEvaluator()
        for seed in range(4):
            q = _query_from(small_db, seed)
            dists = []
            for tr in small_db:
                d = ev.dmom(q, tr)
                if not math.isinf(d):
                    dists.append(d)
            brute = sorted(dists)[:4]
            got = [r.distance for r in engine.oatsq(q, k=4)]
            assert got == pytest.approx(brute)

    def test_oatsq_at_least_atsq_distance(self, engine, small_db):
        q = _query_from(small_db, 9)
        a = engine.atsq(q, k=1)
        o = engine.oatsq(q, k=1)
        if a and o:
            assert o[0].distance >= a[0].distance - 1e-9

    def test_explain(self, engine, small_db):
        q = _query_from(small_db, 10)
        results = engine.oatsq(q, k=2, explain=True)
        for r in results:
            assert r.matches is not None
            flat = [pos for match in r.matches for pos in match]
            # Order constraint: max of each match <= min of the next.
            for i in range(len(r.matches) - 1):
                if r.matches[i] and r.matches[i + 1]:
                    assert max(r.matches[i]) <= min(r.matches[i + 1])


class TestAblationSwitches:
    def test_no_tas_same_results(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        with_tas = GATSearchEngine(index, use_tas=True)
        without = GATSearchEngine(index, use_tas=False)
        q = _query_from(small_db, 11)
        a = [(r.trajectory_id, round(r.distance, 9)) for r in with_tas.atsq(q, 5)]
        b = [(r.trajectory_id, round(r.distance, 9)) for r in without.atsq(q, 5)]
        assert a == b

    def test_loose_lower_bound_same_results(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        tight = GATSearchEngine(index, use_tight_lower_bound=True)
        loose = GATSearchEngine(index, use_tight_lower_bound=False)
        q = _query_from(small_db, 12)
        a = [round(r.distance, 9) for r in tight.atsq(q, 5)]
        b = [round(r.distance, 9) for r in loose.atsq(q, 5)]
        assert a == b

    def test_loose_lower_bound_retrieves_at_least_as_much(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        tight = GATSearchEngine(index, use_tight_lower_bound=True)
        loose = GATSearchEngine(index, use_tight_lower_bound=False)
        q = _query_from(small_db, 13)
        tight.atsq(q, 5)
        t_count = tight.stats.candidates_retrieved
        loose.atsq(q, 5)
        l_count = loose.stats.candidates_retrieved
        assert l_count >= t_count
