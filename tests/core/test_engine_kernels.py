"""Engine-level kernel and batched-I/O parity.

The `EngineConfig.kernel` switch and the `batch_io` fetch path must be
invisible in everything a query returns: same top-k ids in the same
order, distances to the last ulp, and every :class:`SearchStats` counter
— including disk reads — exactly equal.
"""

import math
from dataclasses import fields

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import EngineConfig, GATSearchEngine
from repro.core.kernels import HAVE_NUMPY
from repro.index.gat.index import GATConfig, GATIndex
from repro.storage.disk import SimulatedDisk


@pytest.fixture(scope="module")
def index(small_db):
    return GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))


@pytest.fixture(scope="module")
def queries(small_db):
    gen = QueryWorkloadGenerator(
        small_db, WorkloadConfig(n_query_points=3, n_activities_per_point=2, seed=17)
    )
    return gen.queries(8)


def _stat_dict(stats):
    return {f.name: getattr(stats, f.name) for f in fields(stats)}


def _run(index, queries, **kwargs):
    engine = GATSearchEngine(index, apl_cache_size=0, **kwargs)
    answers, stats = [], []
    for i, q in enumerate(queries):
        index.hicl.clear_cache()
        ctx = engine.execute(q, 5, order_sensitive=(i % 2 == 1))
        answers.append([(r.trajectory_id, r.distance) for r in ctx.ranked])
        stats.append(_stat_dict(ctx.stats))
    return answers, stats


def _assert_answer_parity(a, b):
    assert [[t for t, _ in q] for q in a] == [[t for t, _ in q] for q in b]
    for qa, qb in zip(a, b):
        for (_, da), (_, db) in zip(qa, qb):
            assert math.isclose(da, db, rel_tol=1e-9, abs_tol=1e-12)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
class TestKernelParity:
    def test_scalar_vs_vectorized(self, index, queries):
        scalar_ans, scalar_stats = _run(index, queries, kernel="scalar")
        vector_ans, vector_stats = _run(index, queries, kernel="vectorized")
        _assert_answer_parity(scalar_ans, vector_ans)
        assert scalar_stats == vector_stats

    def test_block_vs_vectorized(self, index, queries):
        """The round-batched block kernel returns the same top-k and the
        exact same counters as the per-candidate vectorized path."""
        vector_ans, vector_stats = _run(index, queries, kernel="vectorized")
        block_ans, block_stats = _run(index, queries, kernel="block")
        _assert_answer_parity(vector_ans, block_ans)
        assert vector_stats == block_stats

    def test_block_vs_scalar(self, index, queries):
        scalar_ans, scalar_stats = _run(index, queries, kernel="scalar")
        block_ans, block_stats = _run(index, queries, kernel="block")
        _assert_answer_parity(scalar_ans, block_ans)
        assert scalar_stats == block_stats

    def test_batch_io_is_invisible(self, index, queries):
        on_ans, on_stats = _run(index, queries, batch_io=True)
        off_ans, off_stats = _run(index, queries, batch_io=False)
        assert on_ans == off_ans  # same kernel → bitwise identical
        assert on_stats == off_stats

    def test_thread_offloaded_gather_parity(self, small_db, queries):
        """io_workers changes only the wall-clock shape of the round's
        APL reads; answers and per-query I/O attribution are unchanged."""
        disk = SimulatedDisk(read_latency_s=0.0)
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4), disk=disk)
        plain_ans, plain_stats = _run(index, queries[:4])
        offload_ans, offload_stats = _run(index, queries[:4], io_workers=4)
        assert plain_ans == offload_ans
        assert plain_stats == offload_stats
        assert all(s["disk_reads"] > 0 for s in offload_stats)

    def test_close_shuts_gather_pool(self, index, queries):
        engine = GATSearchEngine(index, io_workers=2)
        engine.execute(queries[0], 3)
        assert engine._io_executor is not None
        engine.close()
        assert engine._io_executor is None
        engine.close()  # idempotent
        engine.execute(queries[0], 3)  # recreated on demand
        engine.close()


class TestEngineConfig:
    def test_defaults_roundtrip(self, index):
        engine = GATSearchEngine(index)
        assert engine.config == EngineConfig()
        # auto resolves to the block kernel when numpy is importable.
        assert engine.kernel in ("scalar", "block")

    def test_kwargs_override_config(self, index):
        config = EngineConfig(retrieval_batch=64, kernel="scalar")
        engine = GATSearchEngine(index, config=config, retrieval_batch=16)
        assert engine.retrieval_batch == 16
        assert engine.kernel == "scalar"
        assert engine.config.kernel == "scalar"

    def test_invalid_values_rejected(self, index):
        with pytest.raises(ValueError):
            GATSearchEngine(index, retrieval_batch=0)
        with pytest.raises(ValueError):
            GATSearchEngine(index, kernel="simd")
        with pytest.raises(ValueError):
            EngineConfig(io_workers=-1)

    def test_scalar_kernel_always_available(self, index, queries):
        engine = GATSearchEngine(index, kernel="scalar")
        ctx = engine.execute(queries[0], 3)
        assert ctx.ranked is not None
