"""Unit tests for Algorithm 4 beyond the paper example."""

import math

import pytest

from repro.core.order_match import (
    dmom_oracle_enum,
    minimum_order_match,
    minimum_order_match_distance,
    order_feasible,
    order_feasible_strict,
    relevant_points,
)
from repro.core.query import Query, QueryPoint
from repro.model.distance import EuclideanDistance
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory

INF = math.inf
EUCLID = EuclideanDistance()


def _tr(specs, tid=0):
    """specs: [(x, activities)] with y = 0."""
    return ActivityTrajectory(
        tid,
        [TrajectoryPoint(float(x), 0.0, frozenset(a)) for x, a in specs],
    )


def _q(specs):
    """specs: [(x, activities)] with y = 1 (distance = hypot(dx, 1))."""
    return Query([QueryPoint(float(x), 1.0, frozenset(a)) for x, a in specs])


class TestBasicCases:
    def test_single_query_point_equals_dmpm(self):
        tr = _tr([(0, {1}), (5, {1})])
        q = _q([(0, {1})])
        assert minimum_order_match_distance(q, tr, EUCLID) == pytest.approx(1.0)

    def test_order_constraint_changes_result(self):
        # Activities: 1 appears late, 2 appears early -> out-of-order query
        # must use the expensive assignments.
        tr = _tr([(0, {2}), (10, {1})])
        in_order = _q([(0, {2}), (10, {1})])
        out_of_order = _q([(0, {1}), (10, {2})])
        assert minimum_order_match_distance(in_order, tr, EUCLID) == pytest.approx(2.0)
        assert minimum_order_match_distance(out_of_order, tr, EUCLID) == INF

    def test_shared_boundary_point_allowed(self):
        """Definition 7 allows P_i and P_{i+1} to share a point index."""
        tr = _tr([(5, {1, 2})])
        q = _q([(5, {1}), (5, {2})])
        # Both query points match the same single point: 1 + 1.
        assert minimum_order_match_distance(q, tr, EUCLID) == pytest.approx(2.0)

    def test_no_match_when_activity_missing(self):
        tr = _tr([(0, {1})])
        q = _q([(0, {1}), (1, {2})])
        assert minimum_order_match_distance(q, tr, EUCLID) == INF

    def test_multi_point_match_within_segment(self):
        tr = _tr([(0, {1}), (1, {2}), (2, {3})])
        q = _q([(1, {1, 2, 3})])
        d = minimum_order_match_distance(q, tr, EUCLID)
        expected = math.hypot(1, 1) + 1.0 + math.hypot(1, 1)
        assert d == pytest.approx(expected)


class TestCompression:
    def test_relevant_points_filters(self):
        tr = _tr([(0, {1}), (1, {}), (2, {9}), (3, {2})])
        q = _q([(0, {1}), (3, {2})])
        refs = relevant_points(tr, q)
        assert [pos for pos, _p in refs] == [0, 3]

    def test_compression_equivalence_randomised(self):
        import random

        rng = random.Random(31)
        for trial in range(30):
            n = rng.randint(3, 10)
            tr = _tr(
                [
                    (rng.uniform(0, 10), set(rng.sample(range(5), rng.randint(0, 3))))
                    for _ in range(n)
                ],
                tid=trial,
            )
            m = rng.randint(1, 3)
            q = _q(
                [
                    (rng.uniform(0, 10), set(rng.sample(range(5), rng.randint(1, 2))))
                    for _ in range(m)
                ]
            )
            full = minimum_order_match_distance(q, tr, EUCLID, compress=False)
            fast = minimum_order_match_distance(q, tr, EUCLID, compress=True)
            assert full == pytest.approx(fast) or (full == INF and fast == INF)


class TestAgainstOracle:
    def test_random_agreement_with_enumeration(self):
        import random

        rng = random.Random(77)
        for trial in range(25):
            n = rng.randint(2, 7)
            tr = _tr(
                [
                    (rng.uniform(0, 8), set(rng.sample(range(4), rng.randint(0, 2))))
                    for _ in range(n)
                ],
                tid=trial,
            )
            m = rng.randint(1, 3)
            q = _q(
                [
                    (rng.uniform(0, 8), set(rng.sample(range(4), rng.randint(1, 2))))
                    for _ in range(m)
                ]
            )
            got = minimum_order_match_distance(q, tr, EUCLID)
            want = dmom_oracle_enum(q, tr, EUCLID)
            if want == INF:
                assert got == INF
            else:
                assert got == pytest.approx(want)


class TestReconstruction:
    def test_positions_are_ordered_across_query_points(self):
        tr = _tr([(0, {1}), (2, {2}), (4, {1}), (6, {2})])
        q = _q([(0, {1}), (6, {2})])
        dist, matches = minimum_order_match(q, tr, EUCLID)
        assert dist < INF
        assert len(matches) == 2
        assert max(matches[0]) <= min(matches[1])

    def test_reconstruction_cost_equals_distance(self):
        tr = _tr([(0, {1, 2}), (1, {2}), (2, {1}), (3, {3}), (4, {2, 3})])
        q = _q([(0, {1, 2}), (3, {2, 3})])
        dist, matches = minimum_order_match(q, tr, EUCLID)
        total = 0.0
        for qp, match in zip(q, matches):
            covered = set()
            for pos in match:
                covered |= tr[pos].activities
                total += EUCLID(qp.coord, tr[pos].coord)
            assert qp.activities <= covered
        assert total == pytest.approx(dist)

    def test_no_match_returns_empty(self):
        tr = _tr([(0, {1})])
        q = _q([(0, {2})])
        assert minimum_order_match(q, tr, EUCLID) == (INF, ())


class TestFeasibilityChecks:
    def test_strict_implies_paper_check(self):
        """order_feasible is necessary, order_feasible_strict is exact, so
        strict-feasible must imply paper-feasible."""
        import random

        rng = random.Random(5)
        for trial in range(50):
            n = rng.randint(2, 8)
            tr = _tr(
                [
                    (rng.uniform(0, 5), set(rng.sample(range(4), rng.randint(0, 2))))
                    for _ in range(n)
                ],
                tid=trial,
            )
            q = _q(
                [
                    (rng.uniform(0, 5), set(rng.sample(range(4), 1)))
                    for _ in range(rng.randint(1, 3))
                ]
            )
            if order_feasible_strict(tr, q):
                assert order_feasible(tr, q)

    def test_strict_matches_dp_feasibility(self):
        import random

        rng = random.Random(6)
        for trial in range(40):
            n = rng.randint(2, 7)
            tr = _tr(
                [
                    (rng.uniform(0, 5), set(rng.sample(range(4), rng.randint(0, 2))))
                    for _ in range(n)
                ],
                tid=trial,
            )
            q = _q(
                [
                    (rng.uniform(0, 5), set(rng.sample(range(4), rng.randint(1, 2))))
                    for _ in range(rng.randint(1, 3))
                ]
            )
            dp_feasible = minimum_order_match_distance(q, tr, EUCLID) < INF
            assert order_feasible_strict(tr, q) == dp_feasible
