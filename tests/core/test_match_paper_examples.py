"""Exact reproduction of the paper's Algorithm 3 worked example (Table II).

The query point has activities {a, b, c, d}; seven candidate points arrive
in ascending distance order.  Table II lists the hash-table updates after
each point and the evolving Dmpm; the algorithm stops before processing
p7 because Dmpm = 30 < 31 = d(p7, q).
"""

import math

import pytest

from repro.core.match import (
    PointMatchTable,
    minimum_point_match,
    minimum_point_match_distance,
)
from repro.model.distance import MatrixDistance
from repro.model.point import TrajectoryPoint

A, B, C, D = 0, 1, 2, 3
QUERY_ACTIVITIES = frozenset({A, B, C, D})

# (activities, distance) in the order of Table II.
TABLE_II = [
    ({A}, 10.0),
    ({B, C}, 11.0),
    ({A, B}, 13.0),
    ({D}, 15.0),
    ({C, D}, 17.0),
    ({A, B, C}, 26.0),
    ({A, B, C, D}, 31.0),
]


@pytest.fixture
def setup():
    q = (0.0, -1.0)
    table = {}
    points = []
    for i, (acts, dist) in enumerate(TABLE_II):
        coord = (float(i), 0.0)
        table[(q, coord)] = dist
        points.append((i, TrajectoryPoint(coord[0], coord[1], frozenset(acts))))
    return q, points, MatrixDistance(table)


def test_final_dmpm_is_30(setup):
    q, points, metric = setup
    assert minimum_point_match_distance(q, QUERY_ACTIVITIES, points, metric) == 30.0


def test_early_termination_skips_p7(setup):
    """p7 (distance 31) must not be processed: Dmpm = 30 < 31."""
    q, points, metric = setup
    trace = []
    minimum_point_match_distance(q, QUERY_ACTIVITIES, points, metric, trace=trace)
    assert len(trace) == 6  # p1..p6 processed, p7 skipped


def test_hash_states_follow_table2(setup):
    q, points, metric = setup
    trace = []
    minimum_point_match_distance(q, QUERY_ACTIVITIES, points, metric, trace=trace)
    fs = frozenset

    # After p1: {a}: 10.
    assert trace[0] == {fs({A}): 10.0}
    # After p2: the paper's row lists {b},{c},{bc} = 11 and the combined
    # {ab},{ac} = 21, {abc} = 21.
    assert trace[1][fs({B})] == 11.0
    assert trace[1][fs({C})] == 11.0
    assert trace[1][fs({B, C})] == 11.0
    assert trace[1][fs({A, B})] == 21.0
    assert trace[1][fs({A, C})] == 21.0
    assert trace[1][fs({A, B, C})] == 21.0
    # After p3: only {a,b} improves to 13.
    assert trace[2][fs({A, B})] == 13.0
    assert trace[2][fs({A, B, C})] == 21.0  # unchanged
    # After p4: full set reachable at 36.
    assert trace[3][fs({D})] == 15.0
    assert trace[3][fs({A, D})] == 25.0
    assert trace[3][fs({B, D})] == 26.0
    assert trace[3][fs({C, D})] == 26.0
    assert trace[3][fs({B, C, D})] == 26.0
    assert trace[3][fs({A, B, C, D})] == 36.0
    # After p5: {c,d} = 17 improves the full set to 30.
    assert trace[4][fs({C, D})] == 17.0
    assert trace[4][fs({A, C, D})] == 27.0
    assert trace[4][fs({A, B, C, D})] == 30.0
    # After p6: no update (H[{a,b,c}] = 21 < 26).
    assert trace[5] == trace[4]


def test_match_reconstruction_uses_p3_p5(setup):
    """The 30-cost cover is {p3:{a,b}@13, p5:{c,d}@17} = positions 2 and 4
    (H[{a,b}] = 13 combined with H[{c,d}] = 17 in Table II's final state)."""
    q, points, metric = setup
    dist, positions = minimum_point_match(q, QUERY_ACTIVITIES, points, metric)
    assert dist == 30.0
    assert positions == (2, 4)


def test_no_match_when_activity_absent(setup):
    q, points, metric = setup
    missing = frozenset({A, B, C, D, 99})
    assert minimum_point_match_distance(q, missing, points, metric) == math.inf


def test_table_snapshot_roundtrip():
    table = PointMatchTable([A, B, C])
    mask = table.overlap_mask(frozenset({A, C, 77}))
    assert table.mask_to_set(mask) == frozenset({A, C})
