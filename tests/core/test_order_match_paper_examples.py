"""Exact reproduction of the paper's Algorithm 4 example (Table III) and
the order-sensitive statements made about Figure 1 in Section VI-A."""

import math

import pytest

from repro.core.evaluator import MatchEvaluator
from repro.core.order_match import (
    matching_index_bounds,
    minimum_order_match,
    minimum_order_match_distance,
    order_feasible,
    order_feasible_strict,
)

INF = math.inf


class TestTableIII:
    def test_g_matrix_matches_paper(self, fig1):
        g = []
        dist = minimum_order_match_distance(fig1.query, fig1.tr1, fig1.metric, g_matrix=g)
        assert dist == 56.0
        # Table III, 1-based indexing; row 0 is the guardian row.
        assert g[0] == [0.0] * 6
        assert g[1][1:] == [INF, INF, 24.0, 24.0, 24.0]
        assert g[2][1:] == [INF, INF, INF, INF, 55.0]
        assert g[3][1:] == [INF, INF, INF, INF, 56.0]

    def test_compressed_equals_uncompressed(self, fig1):
        full = minimum_order_match_distance(fig1.query, fig1.tr1, fig1.metric, compress=False)
        compressed = minimum_order_match_distance(fig1.query, fig1.tr1, fig1.metric, compress=True)
        assert full == compressed == 56.0

    def test_tr2_order_match_equals_plain_match(self, fig1):
        """Section VI-A: 'Tr2.MOM(Q) is the same as Tr2.MM(Q)'."""
        ev = MatchEvaluator(fig1.metric)
        dmm = ev.dmm(fig1.query, fig1.tr2)
        dmom = minimum_order_match_distance(fig1.query, fig1.tr2, fig1.metric)
        assert dmm == dmom == 25.0

    def test_threshold_early_exit_returns_inf(self, fig1):
        # Row 1 already ends at 24 > 10, so the DP can abort.
        d = minimum_order_match_distance(fig1.query, fig1.tr1, fig1.metric, threshold=10.0)
        assert d == INF


class TestOrderSensitiveMatchOfFigure1:
    def test_tr1_minimum_order_match(self, fig1):
        """Section VI-A: {{p1,2, p1,3}, {p1,4, p1,5}, {p1,5}} is the minimum
        order-sensitive match of Tr1 (0-based: (1,2), (3,4), (4,))."""
        dist, matches = minimum_order_match(fig1.query, fig1.tr1, fig1.metric)
        assert dist == 56.0
        assert matches == ((1, 2), (3, 4), (4,))

    def test_tr1_minimum_point_matches_violate_order(self, fig1):
        """The per-point minima {p1,2, p1,3} (q1) and {p1,1, p1,2} (q2) do
        not comply with the q1 -> q2 order — the reason Lemma 1 fails."""
        ev = MatchEvaluator(fig1.metric)
        _d, matches = ev.dmm_explained(fig1.query, fig1.tr1)
        assert matches[0] == (1, 2)
        assert matches[1] == (0, 1)
        assert max(matches[0]) > min(matches[1])  # order violated

    def test_lemma3_gap_on_tr1(self, fig1):
        """Dmm(Q, Tr1) = 45 < 56 = Dmom(Q, Tr1): the lower bound is strict
        here because the minimum point matches are out of order."""
        ev = MatchEvaluator(fig1.metric)
        assert ev.dmm(fig1.query, fig1.tr1) == 45.0
        assert minimum_order_match_distance(fig1.query, fig1.tr1, fig1.metric) == 56.0


class TestMIBValidation:
    def test_bounds_on_tr1(self, fig1):
        q1, q2, q3 = fig1.query
        assert matching_index_bounds(fig1.tr1, q1) == (1, 2)  # a@p2, b@p3
        assert matching_index_bounds(fig1.tr1, q2) == (0, 4)  # c,d span p1..p5
        assert matching_index_bounds(fig1.tr1, q3) == (4, 4)  # e@p5

    def test_fig1_trajectories_feasible(self, fig1):
        assert order_feasible(fig1.tr1, fig1.query)
        assert order_feasible(fig1.tr2, fig1.query)
        assert order_feasible_strict(fig1.tr1, fig1.query)
        assert order_feasible_strict(fig1.tr2, fig1.query)

    def test_missing_activity_infeasible(self, fig1):
        from repro.core.query import Query, QueryPoint

        q = Query([QueryPoint(0.0, -1.0, frozenset({42}))])
        assert matching_index_bounds(fig1.tr1, q[0]) is None
        assert not order_feasible(fig1.tr1, q)
        assert not order_feasible_strict(fig1.tr1, q)

    def test_reversed_query_rejected_by_mib(self, fig1):
        """Asking for e (only at p5) before a (only at p2) cannot be
        order-matched by Tr1 and the MIB check sees it."""
        from repro.core.query import Query, QueryPoint

        E, A_ = 4, 0
        q = Query(
            [
                QueryPoint(2.0, -1.0, frozenset({E})),
                QueryPoint(0.0, -1.0, frozenset({A_})),
            ]
        )
        assert not order_feasible(fig1.tr1, q)
        assert minimum_order_match_distance(q, fig1.tr1, fig1.metric) == INF
