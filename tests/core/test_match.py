"""Unit tests for the point-match machinery beyond the paper examples."""

import math

import pytest

from repro.core.match import (
    INFINITY,
    PointMatchTable,
    candidate_points,
    minimum_point_match,
    minimum_point_match_distance,
    mpm_oracle_mask_dp,
    mpm_oracle_subset_enum,
)
from repro.model.distance import EuclideanDistance
from repro.model.point import TrajectoryPoint


def _pts(specs):
    """specs: [(x, activities)] -> [(pos, point)] with y = 0."""
    return [
        (i, TrajectoryPoint(float(x), 0.0, frozenset(acts)))
        for i, (x, acts) in enumerate(specs)
    ]


EUCLID = EuclideanDistance()
ORIGIN = (0.0, 0.0)


class TestPointMatchTable:
    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            PointMatchTable([])

    def test_zero_mask_is_noop(self):
        t = PointMatchTable([1, 2])
        t.add(0, 1.0)
        assert t.best() == INFINITY

    def test_single_point_cover(self):
        t = PointMatchTable([1, 2])
        t.add(t.overlap_mask(frozenset({1, 2})), 5.0)
        assert t.best() == 5.0

    def test_two_point_cover(self):
        t = PointMatchTable([1, 2])
        t.add(t.overlap_mask(frozenset({1})), 2.0)
        t.add(t.overlap_mask(frozenset({2})), 3.0)
        assert t.best() == 5.0

    def test_single_beats_pair_when_cheaper(self):
        t = PointMatchTable([1, 2])
        t.add(t.overlap_mask(frozenset({1})), 2.0)
        t.add(t.overlap_mask(frozenset({2})), 3.0)
        t.add(t.overlap_mask(frozenset({1, 2})), 4.0)
        assert t.best() == 4.0

    def test_insertion_order_does_not_matter(self):
        """The table must be exact under arbitrary insertion order — the
        order-sensitive DP adds points right-to-left by position."""
        masks = [({1}, 5.0), ({2}, 1.0), ({1, 2}, 4.5), ({3}, 2.0), ({2, 3}, 2.5)]
        import itertools

        results = set()
        for perm in itertools.permutations(masks):
            t = PointMatchTable([1, 2, 3])
            for acts, d in perm:
                t.add(t.overlap_mask(frozenset(acts)), d)
            results.add(t.best())
        assert results == {6.5}  # {1,2}@4.5 + {3}@2.0, regardless of order

    def test_match_positions_requires_tracking(self):
        t = PointMatchTable([1])
        with pytest.raises(RuntimeError):
            t.match_positions()

    def test_match_positions_empty_when_no_cover(self):
        t = PointMatchTable([1], track_matches=True)
        assert t.match_positions() == ()


class TestMinimumPointMatchDistance:
    def test_candidate_points_filters_disjoint(self):
        pts = [
            TrajectoryPoint(0, 0, frozenset({1})),
            TrajectoryPoint(1, 0, frozenset()),
            TrajectoryPoint(2, 0, frozenset({9})),
            TrajectoryPoint(3, 0, frozenset({1, 9})),
        ]
        cp = candidate_points(pts, frozenset({1}))
        assert [pos for pos, _p in cp] == [0, 3]

    def test_no_points_returns_inf(self):
        assert (
            minimum_point_match_distance(ORIGIN, frozenset({1}), [], EUCLID) == INFINITY
        )

    def test_nearest_covering_point_wins(self):
        pts = _pts([(5, {1}), (2, {1}), (9, {1})])
        assert minimum_point_match_distance(ORIGIN, frozenset({1}), pts, EUCLID) == 2.0

    def test_combined_cover(self):
        pts = _pts([(1, {1}), (2, {2}), (10, {1, 2})])
        assert minimum_point_match_distance(ORIGIN, frozenset({1, 2}), pts, EUCLID) == 3.0

    def test_duplicate_activity_sets(self):
        pts = _pts([(4, {1}), (4, {1}), (6, {2})])
        assert minimum_point_match_distance(ORIGIN, frozenset({1, 2}), pts, EUCLID) == 10.0

    def test_reconstruction_positions_sorted(self):
        pts = _pts([(3, {2}), (1, {1})])
        dist, positions = minimum_point_match(ORIGIN, frozenset({1, 2}), pts, EUCLID)
        assert dist == 4.0
        assert positions == (0, 1)

    def test_reconstruction_cost_matches_distance(self):
        pts = _pts([(1, {1, 2}), (2, {2, 3}), (3, {3, 1}), (4, {1, 2, 3})])
        q = frozenset({1, 2, 3})
        dist, positions = minimum_point_match(ORIGIN, q, pts, EUCLID)
        covered = set()
        cost = 0.0
        for pos in positions:
            covered |= pts[pos][1].activities
            cost += EUCLID(ORIGIN, pts[pos][1].coord)
        assert q <= covered
        assert cost == pytest.approx(dist)


class TestOracles:
    def test_oracles_agree_on_table2(self):
        scored = [
            (10.0, frozenset({0})),
            (11.0, frozenset({1, 2})),
            (13.0, frozenset({0, 1})),
            (15.0, frozenset({3})),
            (17.0, frozenset({2, 3})),
            (26.0, frozenset({0, 1, 2})),
            (31.0, frozenset({0, 1, 2, 3})),
        ]
        q = frozenset({0, 1, 2, 3})
        assert mpm_oracle_mask_dp(scored, q) == 30.0
        assert mpm_oracle_subset_enum(scored, q) == 30.0

    def test_subset_enum_caps_input(self):
        scored = [(1.0, frozenset({0}))] * 20
        with pytest.raises(ValueError):
            mpm_oracle_subset_enum(scored, frozenset({0}))

    def test_oracle_inf_when_uncoverable(self):
        scored = [(1.0, frozenset({0}))]
        assert mpm_oracle_mask_dp(scored, frozenset({0, 1})) == INFINITY
