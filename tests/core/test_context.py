"""Per-query execution state: SearchStats and ExecutionContext."""

import dataclasses

import pytest

from repro.core.context import ExecutionContext, SearchStats
from repro.core.engine import GATSearchEngine
from repro.index.gat.index import GATConfig, GATIndex


class TestSearchStatsReset:
    def test_reset_restores_every_field(self):
        """reset() is driven by dataclasses.fields, so *every* counter —
        including any added later — must come back to its default."""
        stats = SearchStats()
        for f in dataclasses.fields(stats):
            setattr(stats, f.name, 123)
        stats.reset()
        for f in dataclasses.fields(stats):
            assert getattr(stats, f.name) == f.default, f.name

    def test_fresh_instance_equals_reset_instance(self):
        dirty = SearchStats(rounds=9, tas_pruned=4, disk_reads=77)
        dirty.reset()
        assert dirty == SearchStats()


class TestExecutionContext:
    @pytest.fixture(scope="class")
    def engine(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        return GATSearchEngine(index)

    def _query(self, db):
        from repro.core.query import Query, QueryPoint

        tr = next(t for t in db if sum(1 for p in t if p.activities) >= 2)
        pts = [p for p in tr if p.activities][:2]
        return Query(
            [QueryPoint(p.x, p.y, frozenset(list(p.activities)[:2])) for p in pts]
        )

    def test_execute_returns_completed_context(self, engine, small_db):
        q = self._query(small_db)
        ctx = engine.execute(q, k=3)
        assert isinstance(ctx, ExecutionContext)
        assert ctx.ranked is not None
        assert ctx.stats.rounds >= 1
        assert ctx.latency_s > 0.0
        assert ctx.ranked == engine.atsq(q, 3)

    def test_context_threshold_tracks_topk(self, engine, small_db):
        q = self._query(small_db)
        ctx = engine.execute(q, k=1)
        if ctx.ranked:
            assert ctx.threshold() == pytest.approx(ctx.ranked[0].distance)

    def test_contexts_are_independent(self, engine, small_db):
        """Two executions never share counters — the engine holds no
        per-query mutable state."""
        q = self._query(small_db)
        ctx1 = engine.execute(q, k=3)
        ctx2 = engine.execute(q, k=3)
        assert ctx1.stats is not ctx2.stats
        assert ctx1.results is not ctx2.results
        assert ctx1.evaluator is not ctx2.evaluator
        # Same query, same index: identical answers and pruning work.
        assert ctx1.ranked == ctx2.ranked
        assert ctx1.stats.tas_pruned == ctx2.stats.tas_pruned
        assert ctx1.stats.apl_pruned == ctx2.stats.apl_pruned
        assert ctx1.stats.mib_pruned == ctx2.stats.mib_pruned

    def test_engine_stats_property_mirrors_last_context(self, engine, small_db):
        q = self._query(small_db)
        ctx = engine.execute(q, k=2)
        assert engine.stats is ctx.stats
