"""Unit tests for the shared match evaluator."""

import math

import pytest

from repro.core.evaluator import MatchEvaluator
from repro.core.query import Query, QueryPoint
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory

INF = math.inf


def _tr(specs, tid=0):
    return ActivityTrajectory(
        tid, [TrajectoryPoint(float(x), 0.0, frozenset(a)) for x, a in specs]
    )


def _q(specs):
    return Query([QueryPoint(float(x), 0.0, frozenset(a)) for x, a in specs])


class TestDmm:
    def test_lemma1_decomposition(self):
        """Dmm must equal the sum of independent per-point Dmpm values."""
        tr = _tr([(0, {1}), (5, {2}), (10, {1, 2})])
        q = _q([(0, {1}), (10, {2})])
        ev = MatchEvaluator()
        assert ev.dmm(q, tr) == pytest.approx(ev.dmpm(q[0], tr) + ev.dmpm(q[1], tr))

    def test_inf_when_any_point_unmatched(self):
        tr = _tr([(0, {1})])
        q = _q([(0, {1}), (1, {2})])
        assert MatchEvaluator().dmm(q, tr) == INF

    def test_explained_agrees_with_plain(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        plain = ev.dmm(fig1.query, fig1.tr1)
        explained, matches = ev.dmm_explained(fig1.query, fig1.tr1)
        assert plain == explained == 45.0
        assert len(matches) == len(fig1.query)

    def test_stats_counted(self):
        ev = MatchEvaluator()
        tr = _tr([(0, {1})])
        q = _q([(0, {1})])
        ev.dmm(q, tr)
        ev.dmm(q, tr)
        assert ev.stats.dmm_evaluations == 2


class TestDmom:
    def test_dmm_gate_skips_dp(self):
        """When Dmm already exceeds the threshold, Dmom returns inf without
        running the DP (Lemma 3 gating)."""
        tr = _tr([(0, {1}), (100, {2})])
        q = _q([(0, {1}), (0, {2})])
        ev = MatchEvaluator()
        dmm = ev.dmm(q, tr)
        assert ev.dmom(q, tr, threshold=dmm / 2) == INF

    def test_dmom_at_least_dmm(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        for tr in (fig1.tr1, fig1.tr2):
            assert ev.dmom(fig1.query, tr) >= ev.dmm(fig1.query, tr)

    def test_check_order_flag(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        with_check = ev.dmom(fig1.query, fig1.tr1)
        without = ev.dmom(fig1.query, fig1.tr1, check_order=False)
        assert with_check == without == 56.0

    def test_explained(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        d, matches = ev.dmom_explained(fig1.query, fig1.tr1)
        assert d == 56.0
        assert matches == ((1, 2), (3, 4), (4,))


class TestBestMatchDistance:
    def test_lemma2_dbm_lower_bounds_dmm(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        for tr in (fig1.tr1, fig1.tr2):
            assert ev.best_match_distance(fig1.query, tr) <= ev.dmm(fig1.query, tr)

    def test_figure1_best_match_values(self, fig1):
        """Figure 1's motivating claim: under pure best-match distance Tr1
        (2 + 3 + 1 = 6) wrongly beats Tr2 (6 + 4 + 3 = 13)."""
        ev = MatchEvaluator(fig1.metric)
        assert ev.best_match_distance(fig1.query, fig1.tr1) == 6.0
        assert ev.best_match_distance(fig1.query, fig1.tr2) == 13.0
