"""Unit tests for the query model."""

import math

import pytest

from repro.core.query import Query, QueryPoint
from repro.model.vocabulary import Vocabulary


class TestQueryPoint:
    def test_requires_activities(self):
        with pytest.raises(ValueError):
            QueryPoint(0.0, 0.0, frozenset())

    def test_coord(self):
        q = QueryPoint(1.0, 2.0, frozenset({3}))
        assert q.coord == (1.0, 2.0)


class TestQuery:
    def test_requires_points(self):
        with pytest.raises(ValueError):
            Query([])

    def test_sequence_protocol(self):
        q = Query(
            [
                QueryPoint(0, 0, frozenset({1})),
                QueryPoint(1, 1, frozenset({2, 3})),
            ]
        )
        assert len(q) == 2
        assert q[1].activities == frozenset({2, 3})
        assert [p.x for p in q] == [0, 1]

    def test_all_activities_union(self):
        q = Query(
            [
                QueryPoint(0, 0, frozenset({1, 2})),
                QueryPoint(1, 1, frozenset({2, 3})),
            ]
        )
        assert q.all_activities == frozenset({1, 2, 3})

    def test_from_named(self):
        v = Vocabulary(["food", "art"])
        q = Query.from_named(v, [(0.0, 0.0, ["food"]), (1.0, 1.0, ["art", "food"])])
        assert q[0].activities == frozenset({0})
        assert q[1].activities == frozenset({0, 1})

    def test_diameter_two_points(self):
        q = Query(
            [
                QueryPoint(0, 0, frozenset({1})),
                QueryPoint(3, 4, frozenset({1})),
            ]
        )
        assert q.diameter() == pytest.approx(5.0)

    def test_diameter_is_max_pairwise(self):
        q = Query(
            [
                QueryPoint(0, 0, frozenset({1})),
                QueryPoint(1, 0, frozenset({1})),
                QueryPoint(10, 0, frozenset({1})),
            ]
        )
        assert q.diameter() == pytest.approx(10.0)

    def test_diameter_single_point_zero(self):
        q = Query([QueryPoint(5, 5, frozenset({1}))])
        assert q.diameter() == 0.0
