"""Unit tests for the top-k collector."""

import math

import pytest

from repro.core.results import SearchResult, TopKCollector


def _r(tid, dist):
    return SearchResult(tid, dist)


class TestOffer:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKCollector(0)

    def test_fills_up_to_k(self):
        c = TopKCollector(2)
        assert c.offer(_r(1, 5.0))
        assert c.offer(_r(2, 7.0))
        assert not c.offer(_r(3, 9.0))  # worse than current worst
        assert len(c) == 2

    def test_better_replaces_worst(self):
        c = TopKCollector(2)
        c.offer(_r(1, 5.0))
        c.offer(_r(2, 7.0))
        assert c.offer(_r(3, 6.0))
        assert [r.trajectory_id for r in c.results()] == [1, 3]

    def test_infinite_distance_rejected(self):
        c = TopKCollector(2)
        assert not c.offer(_r(1, math.inf))
        assert len(c) == 0

    def test_duplicate_trajectory_rejected(self):
        c = TopKCollector(3)
        assert c.offer(_r(1, 5.0))
        assert not c.offer(_r(1, 1.0))
        assert len(c) == 1

    def test_membership(self):
        c = TopKCollector(2)
        c.offer(_r(4, 2.0))
        assert 4 in c
        assert 5 not in c


class TestKthDistance:
    def test_inf_until_full(self):
        c = TopKCollector(3)
        c.offer(_r(1, 5.0))
        c.offer(_r(2, 6.0))
        assert c.kth_distance() == math.inf
        c.offer(_r(3, 7.0))
        assert c.kth_distance() == 7.0

    def test_tracks_improvements(self):
        c = TopKCollector(2)
        c.offer(_r(1, 5.0))
        c.offer(_r(2, 9.0))
        assert c.kth_distance() == 9.0
        c.offer(_r(3, 4.0))
        assert c.kth_distance() == 5.0


class TestOrdering:
    def test_results_sorted_by_distance_then_id(self):
        c = TopKCollector(4)
        for tid, d in [(9, 3.0), (2, 1.0), (5, 3.0), (7, 2.0)]:
            c.offer(_r(tid, d))
        assert [(r.trajectory_id, r.distance) for r in c.results()] == [
            (2, 1.0),
            (7, 2.0),
            (5, 3.0),
            (9, 3.0),
        ]

    def test_tie_at_boundary_prefers_smaller_id(self):
        c = TopKCollector(1)
        c.offer(_r(9, 3.0))
        assert c.offer(_r(2, 3.0))  # same distance, smaller id wins
        assert [r.trajectory_id for r in c.results()] == [2]

    def test_eviction_keeps_membership_consistent(self):
        c = TopKCollector(2)
        c.offer(_r(1, 5.0))
        c.offer(_r(2, 7.0))
        c.offer(_r(3, 1.0))  # evicts 2
        assert 2 not in c
        assert c.offer(_r(2, 0.5))  # may re-enter after eviction
