"""Shard-suite fixtures: shared-memory leak detection.

Every test in this directory runs under an autouse probe that fails the
test if it finishes with writer-owned shared-memory segments still
linked.  Forgetting ``ShardedGATIndex.close()`` (or leaking a
``SharedTrajectoryStore``) is exactly the kind of bug that passes
locally and accumulates /dev/shm garbage on CI runners — the probe makes
it a test failure at the offending test, not a mystery later.
"""

import pytest

from repro.storage import shm


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    before = shm.active_segments()
    yield
    leaked = [name for name in shm.active_segments() if name not in before]
    assert not leaked, (
        f"test leaked shared-memory segments {leaked}; close the owning "
        "SharedTrajectoryStore / ShardedGATIndex before returning"
    )
