"""Unit tests for the trajectory-id shard router."""

import pytest

from repro.shard.router import ShardRouter


class TestConstruction:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="rendezvous")

    def test_range_needs_starts(self):
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="range")

    def test_range_starts_must_match_shards_and_increase(self):
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="range", range_starts=[0])
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="range", range_starts=[5, 5])

    def test_hash_rejects_starts(self):
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="hash", range_starts=[0, 5])

    def test_range_needs_enough_ids(self):
        with pytest.raises(ValueError):
            ShardRouter.for_ids([1, 2], 3, strategy="range")


class TestRouting:
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_partition_is_total_and_disjoint(self, strategy, n_shards):
        ids = list(range(0, 100, 3))
        router = ShardRouter.for_ids(ids, n_shards, strategy)
        parts = router.partition(ids)
        assert len(parts) == n_shards
        flat = [tid for part in parts for tid in part]
        assert sorted(flat) == sorted(ids)  # every id in exactly one shard
        for sid, part in enumerate(parts):
            assert all(router.shard_of(tid) == sid for tid in part)

    def test_hash_is_modulo(self):
        router = ShardRouter(4)
        assert [router.shard_of(t) for t in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_range_partitions_are_contiguous_and_balanced(self):
        ids = list(range(40))
        router = ShardRouter.for_ids(ids, 4, "range")
        parts = router.partition(ids)
        assert [len(p) for p in parts] == [10, 10, 10, 10]
        for part in parts:
            assert part == list(range(part[0], part[0] + len(part)))

    def test_range_routes_fresh_ids(self):
        """Inserted ids beyond (or between) the build-time population
        still route deterministically: below the first boundary to shard
        0, above the last to the final shard, gaps to the covering range."""
        router = ShardRouter.for_ids([10, 20, 30, 40], 2, "range")
        assert router.shard_of(5) == 0
        assert router.shard_of(25) == 0
        assert router.shard_of(35) == 1
        assert router.shard_of(10_000) == 1

    def test_stability(self):
        """shard_of never changes for a given router — the whole exactness
        argument rests on a trajectory living in exactly one shard."""
        router = ShardRouter.for_ids(range(50), 3, "range")
        first = [router.shard_of(t) for t in range(80)]
        assert first == [router.shard_of(t) for t in range(80)]
