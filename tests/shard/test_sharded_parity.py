"""Exactness: sharded top-k must equal the single-index ranking.

The acceptance bar of the sharding subsystem — for any shard count and any
executor backend, the merged (id, distance) lists match the unsharded
``GATIndex`` byte-for-byte: equal ids, equal float distances (``==``, not
approx), equal order, for both ATSQ and order-sensitive OATSQ.

Distances depend only on (query, trajectory), whole trajectories live in
exactly one shard, and the merge reuses the engine's own
:class:`TopKCollector` tie-breaks — so any deviation at all is a bug.
"""

import pytest

from repro.core.engine import EngineConfig, GATSearchEngine
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.index import GATConfig, GATIndex
from repro.service import QueryRequest
from repro.shard import ShardedGATIndex, ShardedQueryService

CONFIG = GATConfig(depth=4, memory_levels=3)
K = 6
N_QUERIES = 5


@pytest.fixture(scope="module")
def queries(tiny_db):
    gen = QueryWorkloadGenerator(
        tiny_db,
        WorkloadConfig(n_query_points=3, n_activities_per_point=2, seed=41),
    )
    return gen.queries(N_QUERIES)


@pytest.fixture(scope="module")
def single_engine(tiny_db):
    return GATSearchEngine(GATIndex.build(tiny_db, CONFIG))


def _expected(single_engine, queries):
    out = []
    for i, query in enumerate(queries):
        ranked = single_engine.execute(
            query, K, order_sensitive=(i % 2 == 1)
        ).ranked
        out.append([(r.trajectory_id, r.distance) for r in ranked])
    return out


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_sharded_topk_identical_to_single_index(
    tiny_db, queries, single_engine, n_shards, executor
):
    sharded = ShardedGATIndex.build(tiny_db, n_shards=n_shards, config=CONFIG)
    expected = _expected(single_engine, queries)
    with ShardedQueryService(
        sharded, executor=executor, result_cache_size=0
    ) as service:
        for i, query in enumerate(queries):
            response = service.search(query, k=K, order_sensitive=(i % 2 == 1))
            got = [(r.trajectory_id, r.distance) for r in response.results]
            assert got == expected[i], (n_shards, executor, i)


@pytest.mark.parametrize("strategy", ["hash", "range"])
def test_parity_independent_of_routing_strategy(
    tiny_db, queries, single_engine, strategy
):
    sharded = ShardedGATIndex.build(
        tiny_db, n_shards=3, config=CONFIG, strategy=strategy
    )
    expected = _expected(single_engine, queries)
    with ShardedQueryService(sharded, executor="serial") as service:
        got = [
            [(r.trajectory_id, r.distance) for r in resp.results]
            for resp in service.search_many(
                [
                    QueryRequest(q, k=K, order_sensitive=(i % 2 == 1))
                    for i, q in enumerate(queries)
                ]
            )
        ]
    assert got == expected


def test_batched_fanout_preserves_request_order(tiny_db, queries, single_engine):
    """search_many flattens (query, shard) tasks into one pool; response i
    must still answer request i, identical to the sequential path."""
    sharded = ShardedGATIndex.build(tiny_db, n_shards=4, config=CONFIG)
    expected = _expected(single_engine, queries)
    with ShardedQueryService(sharded, executor="thread", max_workers=6) as service:
        responses = service.search_many(
            [
                QueryRequest(q, k=K, order_sensitive=(i % 2 == 1))
                for i, q in enumerate(queries)
            ]
        )
    got = [[(r.trajectory_id, r.distance) for r in resp.results] for resp in responses]
    assert got == expected


def test_explain_matches_single_index(tiny_db, queries, single_engine):
    sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
    query = queries[0]
    want = single_engine.execute(query, K, order_sensitive=True, explain=True).ranked
    with ShardedQueryService(sharded, executor="serial") as service:
        got = service.search(query, k=K, order_sensitive=True, explain=True).results
    assert [(r.trajectory_id, r.distance, r.matches) for r in got] == [
        (r.trajectory_id, r.distance, r.matches) for r in want
    ]


def test_parity_with_scalar_kernel_config(tiny_db, queries):
    """The engine config (here: the scalar kernel) is applied uniformly
    across shards, and parity holds against a single index using the same
    config."""
    config = EngineConfig(kernel="scalar")
    single = GATSearchEngine(GATIndex.build(tiny_db, CONFIG), config=config)
    sharded = ShardedGATIndex.build(tiny_db, n_shards=3, config=CONFIG)
    query = queries[1]
    want = single.execute(query, K).ranked
    with ShardedQueryService(sharded, engine_config=config, executor="serial") as svc:
        got = svc.search(query, k=K).results
    assert [(r.trajectory_id, r.distance) for r in got] == [
        (r.trajectory_id, r.distance) for r in want
    ]
