"""Replica tier: router strategies, byte-identical parity with the
unreplicated service, replica bank lifecycle, and insert resync."""

import copy
import threading

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.index import GATConfig
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.shard import (
    REPLICA_ROUTERS,
    LeastInFlightRouter,
    PowerOfTwoRouter,
    ReplicatedShardedService,
    RoundRobinRouter,
    ShardedGATIndex,
    ShardedQueryService,
    make_replica_router,
)
from repro.storage.disk import SimulatedDisk

CONFIG = GATConfig(depth=4, memory_levels=3)


def _queries(db, n=6, seed=17):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=seed)
    )
    return gen.queries(n)


def _rankings(responses):
    return [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]


# ----------------------------------------------------------------------
# Routers (pure units)
# ----------------------------------------------------------------------
class TestReplicaRouters:
    def test_round_robin_cycles_per_shard(self):
        router = RoundRobinRouter(n_shards=2, n_replicas=3)
        assert [router.route(0) for _ in range(5)] == [0, 1, 2, 0, 1]
        # Each shard cycles independently.
        assert router.route(1) == 0
        assert router.in_flight(0) == (2, 2, 1)

    def test_least_in_flight_picks_shallowest(self):
        router = LeastInFlightRouter(n_shards=1, n_replicas=3)
        assert router.route(0) == 0
        assert router.route(0) == 1
        assert router.route(0) == 2
        router.release(0, 1)  # depths now (1, 0, 1)
        assert router.route(0) == 1
        # Tie (1, 1, 1) breaks to the lowest replica id, deterministically.
        assert router.route(0) == 0

    def test_power_of_two_prefers_less_loaded(self):
        router = PowerOfTwoRouter(n_shards=1, n_replicas=2, seed=5)
        first = router.route(0)
        # With two replicas both are always sampled, so the second task
        # must land on the other (empty) copy, whatever the rng does.
        assert router.route(0) == 1 - first
        assert router.in_flight(0) == (1, 1)

    def test_power_of_two_seed_reproducible(self):
        a = PowerOfTwoRouter(n_shards=1, n_replicas=4, seed=99)
        b = PowerOfTwoRouter(n_shards=1, n_replicas=4, seed=99)
        assert [a.route(0) for _ in range(20)] == [b.route(0) for _ in range(20)]

    def test_release_without_route_raises(self):
        router = RoundRobinRouter(n_shards=1, n_replicas=2)
        with pytest.raises(RuntimeError):
            router.release(0, 0)

    def test_factory_and_validation(self):
        for strategy in REPLICA_ROUTERS:
            router = make_replica_router(strategy, 2, 2, seed=1)
            assert router.strategy == strategy
        with pytest.raises(ValueError):
            make_replica_router("random", 2, 2)
        with pytest.raises(ValueError):
            RoundRobinRouter(n_shards=2, n_replicas=0)

    def test_thread_safety_of_lease_accounting(self):
        router = LeastInFlightRouter(n_shards=1, n_replicas=4)

        def worker():
            for _ in range(200):
                replica = router.route(0)
                router.release(0, replica)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert router.in_flight(0) == (0, 0, 0, 0)
        assert router.routed == 1600


# ----------------------------------------------------------------------
# Parity: replication must be invisible in the rankings
# ----------------------------------------------------------------------
class TestReplicatedParity:
    @pytest.fixture(scope="class")
    def reference(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=3, config=CONFIG)
        queries = _queries(tiny_db)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            atsq = _rankings(service.search_many(queries, k=4))
            oatsq = _rankings(service.search_many(queries, k=4, order_sensitive=True))
        return sharded, queries, atsq, oatsq

    @pytest.mark.parametrize("router", REPLICA_ROUTERS)
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_rankings_byte_identical(self, reference, router, executor):
        sharded, queries, atsq, oatsq = reference
        with ReplicatedShardedService(
            sharded,
            executor=executor,
            n_replicas=2,
            replica_router=router,
            router_seed=7,
            result_cache_size=0,
        ) as service:
            assert _rankings(service.search_many(queries, k=4)) == atsq
            assert (
                _rankings(service.search_many(queries, k=4, order_sensitive=True))
                == oatsq
            )
            # Every lease taken during the fan-outs was returned.
            for sid in range(sharded.n_shards):
                assert service.router.in_flight(sid) == (0, 0)
            assert service.router.routed > 0

    def test_three_replicas_serial(self, reference):
        sharded, queries, atsq, _ = reference
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=3,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            assert _rankings(service.search_many(queries, k=4)) == atsq

    def test_batched_explain_parity(self, reference):
        sharded, queries, _, _ = reference
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            batched = service.search_many(queries[:3], k=3, explain=True)
            for query, response in zip(queries[:3], batched):
                single = service.search(query, k=3, explain=True)
                assert [
                    (r.trajectory_id, r.distance, r.matches)
                    for r in response.results
                ] == [
                    (r.trajectory_id, r.distance, r.matches)
                    for r in single.results
                ]
                assert all(r.matches is not None for r in response.results)


class TestReplicatedProcessBackend:
    def test_process_parity_and_lease_drain(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        queries = _queries(tiny_db, n=3)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as base:
            expected = _rankings(base.search_many(queries, k=3))
        with ReplicatedShardedService(
            sharded,
            executor="process",
            n_replicas=2,
            replica_router="least-in-flight",
            result_cache_size=0,
        ) as service:
            assert _rankings(service.search_many(queries, k=3)) == expected
            # Submission-time leases are all released once the fan-out
            # returns.
            for sid in range(sharded.n_shards):
                assert service.router.in_flight(sid) == (0, 0)


# ----------------------------------------------------------------------
# Mechanics: replicas really serve, leases drain, inserts resync
# ----------------------------------------------------------------------
class TestReplicaMechanics:
    def test_replica_bank_actually_serves(self, tiny_db):
        """Round-robin over 2 replicas: consecutive fan-outs alternate
        banks, so the replica copies' own disks must see reads."""
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        query = _queries(tiny_db, n=1)[0]
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            service.search(query, k=3)  # replica 0 (the primary bank)
            service.search(query, k=3)  # replica 1
            replica_reads = sum(
                shard.disk.stats.reads for shard in service._replica_indexes[0]
            )
            assert replica_reads > 0

    def test_default_replica_disks_clone_primary_cost_model(self, tiny_db):
        sharded = ShardedGATIndex.build(
            tiny_db,
            n_shards=2,
            config=CONFIG,
            disk_factory=lambda: SimulatedDisk(
                read_latency_s=0.001, concurrent_reads=2
            ),
        )
        for replica in sharded.replicate():
            assert replica.disk.read_latency_s == 0.001
            assert replica.disk.concurrent_reads == 2
            assert replica.disk is not sharded.shards[0].disk

    def test_insert_resyncs_replica_banks(self, tiny_db):
        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        query = _queries(db, n=1)[0]
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            service.search(query, k=3)
            tid = max(tr.trajectory_id for tr in db) + 1
            new_tr = ActivityTrajectory(
                tid,
                [TrajectoryPoint(p.x, p.y, frozenset(p.activities)) for p in query],
            )
            sharded.insert_trajectory(new_tr)
            # Two searches so round-robin provably hits the rebuilt
            # replica bank (not just the always-fresh primary) for the
            # owning shard; a stale replica could not return the new id.
            for _ in range(2):
                response = service.search(query, k=3)
                assert response.results[0].trajectory_id == tid
                assert response.results[0].distance == 0.0
                assert response.stats.rounds > 0  # recomputed, never stale
            assert service._banks_version == sharded.version

    def test_result_cache_survives_replication(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        query = _queries(tiny_db, n=1)[0]
        with ReplicatedShardedService(
            sharded, executor="serial", n_replicas=2
        ) as service:
            service.search(query, k=3)
            repeat = service.search(query, k=3)
            assert repeat.stats.rounds == 0  # served from the result cache
            stats = service.stats()
            assert stats.result_cache_hits == 1
            assert stats.queries == 2

    def test_validation_errors(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        with pytest.raises(ValueError):
            ReplicatedShardedService(sharded, n_replicas=0)
        wrong_shape = RoundRobinRouter(n_shards=3, n_replicas=2)
        with pytest.raises(ValueError):
            ReplicatedShardedService(
                sharded, n_replicas=2, replica_router=wrong_shape
            )
        with pytest.raises(ValueError):
            ReplicatedShardedService(
                sharded, n_replicas=2, replica_router="random-spray"
            )
        with pytest.raises(ValueError, match="in-process only"):
            ReplicatedShardedService(
                sharded,
                n_replicas=2,
                executor="process",
                replica_disk_factory=SimulatedDisk,
            )

    def test_single_replica_degenerates_to_base(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        queries = _queries(tiny_db, n=3)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as base:
            expected = _rankings(base.search_many(queries, k=3))
        with ReplicatedShardedService(
            sharded, executor="serial", n_replicas=1, result_cache_size=0
        ) as service:
            assert _rankings(service.search_many(queries, k=3)) == expected
            assert service._replica_indexes == []

    def test_close_is_idempotent_and_closes_banks(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        service = ReplicatedShardedService(
            sharded, executor="thread", n_replicas=2, result_cache_size=0
        )
        service.search(_queries(tiny_db, n=1)[0], k=2)
        service.close()
        service.close()
        with pytest.raises(RuntimeError):
            service.search(_queries(tiny_db, n=1)[0], k=2)


class TestProcessCostModelCarryOver:
    def test_spec_ships_concurrent_reads_to_workers(self, tiny_db):
        """The bounded-device model must survive the process boundary:
        worker disks rebuilt from the spec carry the parent disks'
        command depth, not an unbounded default."""
        from repro.shard import build_shard_engine

        sharded = ShardedGATIndex.build(
            tiny_db,
            n_shards=2,
            config=CONFIG,
            disk_factory=lambda: SimulatedDisk(
                read_latency_s=0.001, concurrent_reads=1
            ),
        )
        service = ShardedQueryService(sharded, executor="process")
        try:
            spec = service._make_spec()
            assert spec.concurrent_reads == 1
            assert spec.read_latency_s == 0.001
            worker_engine = build_shard_engine(spec, 0)
            assert worker_engine.index.disk.concurrent_reads == 1
            assert worker_engine.index.disk.read_latency_s == 0.001
        finally:
            service.close()


class TestResyncOrdering:
    def test_banks_resync_before_version_publish(self, tiny_db):
        """Regression: the replica banks must be rebuilt *before* the
        base class publishes the fresh _index_version — otherwise a
        concurrent search could observe the new version, skip the
        resync, and lease a stale (pre-insert) replica engine."""
        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        query = _queries(db, n=1)[0]
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            service.search(query, k=2)
            old_version = service._index_version
            observed = []
            original = service._resync_banks

            def spying_resync():
                observed.append(service._index_version)
                original()

            service._resync_banks = spying_resync
            tid = max(tr.trajectory_id for tr in db) + 1
            sharded.insert_trajectory(
                ActivityTrajectory(
                    tid,
                    [
                        TrajectoryPoint(p.x, p.y, frozenset(p.activities))
                        for p in query
                    ],
                )
            )
            service.search(query, k=2)
            # The resync ran, and it ran while the service still showed
            # the pre-insert version (publish comes after).
            assert observed == [old_version]
            assert service._index_version == sharded.version
            assert service._banks_version == sharded.version


class TestResyncStatsBaselines:
    def test_cache_hit_rates_stay_valid_across_resync(self, tiny_db):
        """Regression: rebuilding the replica banks discards their cache
        counters, so the stats baselines must shed them too.  Pre-fix,
        stats() diffed a shrunken "now" against a baseline still holding
        the vanished counters, yielding hit-rate deltas that were
        negative (clamped to a bogus 0.0) or above 1.0 depending on the
        traffic mix; with heavy pre-reset warm traffic the post-resync
        warm rates collapsed to exactly 0.0."""
        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        queries = _queries(db)
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            # Heavy warm traffic so the replica caches accumulate big
            # counters *before* the baselines are snapshotted by reset.
            for _ in range(6):
                service.search_many(queries, k=3)
            service.reset_stats()
            service.search_many(queries[:2], k=3)  # warm: high real hit rate
            tid = max(tr.trajectory_id for tr in db) + 1
            query = queries[0]
            sharded.insert_trajectory(
                ActivityTrajectory(
                    tid,
                    [
                        TrajectoryPoint(p.x, p.y, frozenset(p.activities))
                        for p in query
                    ],
                )
            )
            service.search_many(queries[:2], k=3)  # triggers the bank resync
            stats = service.stats()
            # The warm traffic really hit the caches: the rates must be
            # positive and within [0, 1] — never the clamped 0.0 (or the
            # >1.0 overshoot) the stale baselines produced.
            assert 0.0 < stats.hicl_cache_hit_rate <= 1.0
            assert 0.0 < stats.apl_cache_hit_rate <= 1.0


class TestOverflowInsertAcrossBanks:
    def test_every_bank_serves_fresh_after_overflow_rebuild(self, tiny_db):
        """Regression: an overflow insert replaces the owning shard's
        GATIndex object.  Bank 0 aliases the base service's engine list,
        which must be rebound in place — otherwise round-robin would
        alternate fresh (replica) and stale (primary) rankings for the
        same query."""
        from repro.core.query import Query, QueryPoint

        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        box = db.bounding_box
        anchor = next(p for tr in db for p in tr if p.activities)
        tid = max(tr.trajectory_id for tr in db) + 1
        trajectory = ActivityTrajectory(
            tid,
            [
                TrajectoryPoint(
                    box.max_x + 2.0, box.max_y + 2.0, frozenset(anchor.activities)
                )
            ],
        )
        query = Query(
            [
                QueryPoint(
                    trajectory[0].x,
                    trajectory[0].y,
                    frozenset(list(trajectory[0].activities)[:1]),
                )
            ]
        )
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            result_cache_size=0,
        ) as service:
            service.search(query, k=1)
            sharded.insert_trajectory(trajectory)
            # Four searches: round-robin provably cycles both banks twice
            # for the owning shard; every answer must be the newcomer.
            for _ in range(4):
                response = service.search(query, k=1)
                assert response.results[0].trajectory_id == tid
                assert response.results[0].distance == 0.0
            owner = sharded.shard_of(tid)
            assert service._banks[0][owner].index is sharded.shards[owner]
