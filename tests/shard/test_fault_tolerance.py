"""Supervised fan-out under injected faults: the serving-tier contract.

Parity when healthy, failover on errors, graceful degradation on dead
shards and missed deadlines, hedging on stragglers — and the leak
regressions: every failure path must hand back its engine leases and
threshold slots.
"""

import copy

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.faults import FaultInjector, FaultRule, InjectedDiskError
from repro.index.gat.index import GATConfig
from repro.shard import (
    FaultPolicy,
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
    ShardTaskError,
)
from repro.storage.disk import SimulatedDisk

CONFIG = GATConfig(depth=4, memory_levels=3)
K = 5
N_SHARDS = 2


@pytest.fixture()
def db(tiny_db):
    return copy.deepcopy(tiny_db)


@pytest.fixture()
def queries(db):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=17)
    )
    return gen.queries(4)


def _build(db, disk_factory=None):
    return ShardedGATIndex.build(
        db, n_shards=N_SHARDS, config=CONFIG, disk_factory=disk_factory
    )


def _shard_down_build(db, rule, seed=7):
    """A sharded index whose *first-built* shard wears the faulty disk."""
    injector = FaultInjector(rule, seed=seed)
    disks = iter(
        [SimulatedDisk(fault_injector=injector)]
        + [SimulatedDisk() for _ in range(N_SHARDS - 1)]
    )
    return _build(db, disk_factory=lambda: next(disks)), injector


def _rankings(responses):
    return [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]


def _truth(db, queries):
    with _build(db) as sharded:
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            return _rankings(service.search_many(queries, k=K))


# ----------------------------------------------------------------------
# Parity: supervision must be free when nothing fails
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_supervised_parity_with_no_faults(db, queries, executor):
    truth = _truth(db, queries)
    with _build(db) as sharded:
        with ShardedQueryService(
            sharded,
            executor=executor,
            result_cache_size=0,
            fault_policy=FaultPolicy(deadline_s=60.0, max_retries=2),
        ) as service:
            responses = service.search_many(queries, k=K)
            stats = service.stats()
    assert _rankings(responses) == truth
    assert all(r.complete for r in responses)
    assert all(
        r.shards_answered == N_SHARDS and r.shards_total == N_SHARDS
        for r in responses
    )
    assert stats.task_retries == 0
    assert stats.task_hedges == 0
    assert stats.partial_responses == 0


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
def test_transient_error_is_retried_to_full_coverage(db, queries):
    """max_errors=1: exactly the first read fails, the retry succeeds —
    one counted retry, exact rankings, full coverage."""
    truth = _truth(db, queries)
    injector = FaultInjector(FaultRule(error_rate=1.0, max_errors=1), seed=0)
    with _build(
        db, disk_factory=lambda: SimulatedDisk(fault_injector=injector)
    ) as sharded:
        with ShardedQueryService(
            sharded,
            executor="thread",
            result_cache_size=0,
            fault_policy=FaultPolicy(max_retries=2),
        ) as service:
            responses = service.search_many(queries, k=K)
            stats = service.stats()
    assert _rankings(responses) == truth
    assert all(r.complete for r in responses)
    assert stats.task_retries == 1
    assert injector.errors_injected == 1


def test_dead_shard_degrades_to_partial_coverage(db, queries):
    sharded, injector = _shard_down_build(db, FaultRule(error_rate=1.0))
    with sharded:
        with ShardedQueryService(
            sharded,
            executor="thread",
            result_cache_size=0,
            fault_policy=FaultPolicy(max_retries=1, allow_partial=True),
        ) as service:
            responses = service.search_many(queries, k=K)
            stats = service.stats()
    assert all(not r.complete for r in responses)
    assert all(
        r.shards_answered == N_SHARDS - 1 and r.shards_total == N_SHARDS
        for r in responses
    )
    assert stats.partial_responses == len(queries)
    assert injector.errors_injected >= len(queries)


def test_allow_partial_false_raises_contextual_error(db, queries):
    sharded, _ = _shard_down_build(db, FaultRule(error_rate=1.0))
    with sharded:
        with ShardedQueryService(
            sharded,
            executor="thread",
            result_cache_size=0,
            fault_policy=FaultPolicy(max_retries=1, allow_partial=False),
        ) as service:
            with pytest.raises(ShardTaskError) as excinfo:
                service.search(queries[0], k=K)
    err = excinfo.value
    assert err.shard_id in range(N_SHARDS)
    assert err.replica == 0
    assert isinstance(err.original, InjectedDiskError)
    assert f"shard {err.shard_id}" in str(err)
    assert f"k={K}" in str(err)


def test_partial_responses_are_never_cached(db, queries):
    """A degraded answer must not poison the result cache: once the disk
    heals, the same request gets a fresh, complete response."""
    sharded, injector = _shard_down_build(db, FaultRule(error_rate=1.0))
    with sharded:
        with ShardedQueryService(
            sharded,
            executor="thread",
            result_cache_size=32,
            fault_policy=FaultPolicy(max_retries=1, allow_partial=True),
        ) as service:
            degraded = service.search(queries[0], k=K)
            assert not degraded.complete
            injector.enabled = False
            healed = service.search(queries[0], k=K)
            assert healed.complete
            assert healed.shards_answered == N_SHARDS
            # And *complete* responses do cache: the third ask is a hit.
            again = service.search(queries[0], k=K)
            assert again.complete
            assert service.stats().result_cache_hits >= 1


# ----------------------------------------------------------------------
# Deadlines (stalled shard)
# ----------------------------------------------------------------------
def test_deadline_abandons_stalled_shard(db, queries):
    sharded, injector = _shard_down_build(db, FaultRule(stall_rate=1.0))
    try:
        with sharded:
            with ShardedQueryService(
                sharded,
                executor="thread",
                result_cache_size=0,
                fault_policy=FaultPolicy(
                    deadline_s=0.25, max_retries=0, allow_partial=True
                ),
            ) as service:
                response = service.search(queries[0], k=K)
                # Drain the abandoned attempt before the pool shuts down.
                injector.lift_stalls()
        assert not response.complete
        assert response.shards_answered == N_SHARDS - 1
        assert response.shards_total == N_SHARDS
        assert injector.stalls_injected >= 1
    finally:
        injector.lift_stalls()


# ----------------------------------------------------------------------
# Hedging + replica failover
# ----------------------------------------------------------------------
def test_hedge_fires_on_slow_replica_and_stays_exact(db, queries):
    truth = _truth(db, queries)
    with _build(
        db, disk_factory=lambda: SimulatedDisk(read_latency_s=0.02)
    ) as sharded:
        with ReplicatedShardedService(
            sharded,
            executor="thread",
            n_replicas=2,
            result_cache_size=0,
            replica_disk_factory=lambda: SimulatedDisk(),
            fault_policy=FaultPolicy(max_retries=2, hedge_after_s=0.005),
        ) as service:
            responses = service.search_many(queries, k=K)
            stats = service.stats()
    assert _rankings(responses) == truth
    assert all(r.complete for r in responses)
    assert stats.task_hedges >= 1


def test_failover_to_clean_replicas_reaches_full_coverage(db, queries):
    """Every primary disk errors constantly; the replica bank is clean.
    Retries re-lease through the router, so coverage must be full and
    rankings exact."""
    truth = _truth(db, queries)
    injector = FaultInjector(FaultRule(error_rate=1.0), seed=0)
    with _build(
        db, disk_factory=lambda: SimulatedDisk(fault_injector=injector)
    ) as sharded:
        with ReplicatedShardedService(
            sharded,
            executor="thread",
            n_replicas=2,
            result_cache_size=0,
            replica_disk_factory=lambda: SimulatedDisk(),
            fault_policy=FaultPolicy(max_retries=4),
        ) as service:
            responses = service.search_many(queries, k=K)
    assert _rankings(responses) == truth
    assert all(r.complete for r in responses)


def test_router_in_flight_drains_after_total_failure(db, queries):
    """Both copies of every shard error on every read: the batch comes
    back all-partial (coverage zero) and — the leak regression — every
    router lease taken by the failed and retried attempts is back."""
    injector = FaultInjector(FaultRule(error_rate=1.0), seed=0)
    replica_injector = FaultInjector(FaultRule(error_rate=1.0), seed=1)
    with _build(
        db, disk_factory=lambda: SimulatedDisk(fault_injector=injector)
    ) as sharded:
        with ReplicatedShardedService(
            sharded,
            executor="thread",
            n_replicas=2,
            result_cache_size=0,
            replica_disk_factory=lambda: SimulatedDisk(
                fault_injector=replica_injector
            ),
            fault_policy=FaultPolicy(max_retries=1, allow_partial=True),
        ) as service:
            responses = service.search_many(queries, k=K)
            assert all(r.shards_answered == 0 for r in responses)
            for shard_id in range(N_SHARDS):
                assert service.router.in_flight(shard_id) == (0, 0)


def test_breaker_config_requires_strategy_name(db):
    """A prebuilt router already owns its health tracker; passing a
    BreakerConfig alongside one would silently not apply."""
    from repro.shard import BreakerConfig
    from repro.shard.replicas import RoundRobinRouter

    with _build(db) as sharded:
        with pytest.raises(ValueError, match="strategy name"):
            ReplicatedShardedService(
                sharded,
                executor="serial",
                n_replicas=2,
                replica_router=RoundRobinRouter(N_SHARDS, 2),
                breaker=BreakerConfig(),
            )


# ----------------------------------------------------------------------
# Leak regressions on the process backend
# ----------------------------------------------------------------------
def test_failed_batch_build_releases_threshold_slots(db, queries, monkeypatch):
    """A mid-batch failure while *building* fan-outs used to strand the
    earlier queries' threshold slots; every acquired slot must be free
    again after the raise.  (The pool is lazy, so nothing ever spawns.)"""
    with _build(db) as sharded:
        with ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        ) as service:
            executor = service._executor
            real_tasks_for = service._tasks_for
            calls = {"n": 0}

            def exploding_tasks_for(request, group, threshold_slot=None):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise RuntimeError("boom while building fan-out")
                return real_tasks_for(request, group, threshold_slot)

            monkeypatch.setattr(service, "_tasks_for", exploding_tasks_for)
            with pytest.raises(RuntimeError, match="boom"):
                service.search_many(queries[:2], k=K)
            assert sorted(executor._free_slots) == list(range(executor.N_SLOTS))
