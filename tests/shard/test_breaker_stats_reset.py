"""Regression: breaker lifecycle counters must honour reset_stats().

``ReplicaHealth.ejections/restores/probes`` are lifetime-monotonic by
design (the router's health logic diffs nothing and must never rewind).
The serving tier surfaces them through ``stats()``, which *is* a
windowed view — ``reset_stats()`` zeroes queries, latencies, retries.
Before the reset-baseline fix, the breaker counters leaked through a
reset: a monitoring poller that resets per scrape would re-report every
historical ejection forever.
"""

import copy
import time

import pytest

from repro.index.gat.index import GATConfig
from repro.shard import BreakerConfig, ReplicatedShardedService, ShardedGATIndex

CONFIG = GATConfig(depth=4, memory_levels=3)
N_SHARDS = 2


@pytest.fixture()
def service(tiny_db):
    sharded = ShardedGATIndex.build(
        copy.deepcopy(tiny_db), n_shards=N_SHARDS, config=CONFIG
    )
    with sharded:
        with ReplicatedShardedService(
            sharded,
            executor="serial",
            n_replicas=2,
            replica_router="round-robin",
            breaker=BreakerConfig(failure_threshold=1, probation_after_s=0.05),
            result_cache_size=0,
        ) as svc:
            yield svc


def test_ejections_surface_in_stats(service):
    assert service.stats().breaker_ejections == 0
    service.router.record_failure(0, 0)  # threshold 1: instant ejection
    stats = service.stats()
    assert stats.breaker_ejections == 1
    assert stats.breaker_restores == 0


def test_reset_stats_zeroes_breaker_counters(service):
    service.router.record_failure(0, 0)
    service.router.record_failure(1, 1)
    assert service.stats().breaker_ejections == 2

    service.reset_stats()
    stats = service.stats()
    # The regression: these read 2 again before the reset baseline.
    assert stats.breaker_ejections == 0
    assert stats.breaker_restores == 0
    assert stats.breaker_probes == 0

    # New trips after the reset count from zero, not from history.
    service.router.record_failure(0, 1)
    assert service.stats().breaker_ejections == 1


def test_probe_and_restore_count_within_the_window(service):
    router = service.router
    router.record_failure(0, 0)  # eject replica (0, 0)
    service.reset_stats()
    time.sleep(0.06)  # probation expires
    # Routing shard 0 now leases the probation candidate as its probe;
    # round-robin's cursor may need one extra lease to land on it.
    probed = None
    for _ in range(2):
        replica = router.route(0)
        router.release(0, replica)
        if router.replica_state(0, replica) == "probing":
            probed = replica
            break
    assert probed is not None
    router.record_success(0, probed)  # the probe heals the replica
    stats = service.stats()
    assert stats.breaker_probes == 1
    assert stats.breaker_restores == 1
    assert stats.breaker_ejections == 0  # the pre-reset ejection stays out
    assert router.replica_state(0, probed) == "closed"
