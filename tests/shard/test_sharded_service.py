"""ShardedQueryService behaviour: result cache, invalidation, stats."""

import copy

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.index import GATConfig
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.core.query import Query, QueryPoint
from repro.shard import ShardedGATIndex, ShardedQueryService
from repro.storage.disk import SimulatedDisk

CONFIG = GATConfig(depth=4, memory_levels=3)


@pytest.fixture()
def db(tiny_db):
    # Mutating tests get their own copy; the session fixture stays pristine.
    return copy.deepcopy(tiny_db)


def _query_for(db, seed=17):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=seed)
    )
    return gen.query()


def _perfect_match_insert(db, query_points):
    """A fresh trajectory that matches *query_points* at distance zero."""
    tid = max(tr.trajectory_id for tr in db) + 1
    return ActivityTrajectory(
        tid, [TrajectoryPoint(p.x, p.y, frozenset(p.activities)) for p in query_points]
    )


class TestResultCache:
    def test_repeat_is_served_from_cache(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        with ShardedQueryService(sharded, executor="serial") as service:
            query = _query_for(db)
            first = service.search(query, k=4)
            second = service.search(query, k=4)
            assert second.stats.rounds == 0  # zero engine work
            assert [
                (r.trajectory_id, r.distance) for r in second.results
            ] == [(r.trajectory_id, r.distance) for r in first.results]
            stats = service.stats()
            assert stats.result_cache_lookups == 2
            assert stats.result_cache_hits == 1

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_insert_into_any_shard_invalidates(self, db, executor):
        """Cross-shard invalidation: the insert lands on *one* shard, yet
        every cached result — whichever shards produced it — is dropped,
        and the recomputed answer sees the new trajectory.  With the
        process backend this also exercises the worker-snapshot refresh
        (stale workers could never return the new trajectory)."""
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        with ShardedQueryService(sharded, executor=executor) as service:
            query = _query_for(db)
            service.search(query, k=3)
            cached = service.search(query, k=3)
            assert cached.stats.rounds == 0

            new_tr = _perfect_match_insert(db, list(query))
            sharded.insert_trajectory(new_tr)

            refreshed = service.search(query, k=3)
            assert refreshed.stats.rounds > 0  # recomputed, not served stale
            assert refreshed.results[0].trajectory_id == new_tr.trajectory_id
            assert refreshed.results[0].distance == 0.0

    def test_direct_shard_insert_also_invalidates(self, db):
        """The composite version reads through to the shards, so even an
        insert issued against one shard's GATIndex (bypassing the facade)
        drops the cache."""
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(sharded, executor="serial") as service:
            query = _query_for(db)
            service.search(query, k=3)
            assert service.search(query, k=3).stats.rounds == 0

            new_tr = _perfect_match_insert(db, list(query))
            owner = sharded.shard_of(new_tr.trajectory_id)
            sharded.shards[owner].insert_trajectory(new_tr)

            assert service.search(query, k=3).stats.rounds > 0

    def test_cache_disabled(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            query = _query_for(db)
            service.search(query, k=3)
            again = service.search(query, k=3)
            assert again.stats.rounds > 0
            assert service.stats().result_cache_lookups == 0


class TestAggregatedStats:
    def test_disk_reads_sum_over_shards(self, db):
        sharded = ShardedGATIndex.build(
            db, n_shards=3, config=CONFIG, disk_factory=SimulatedDisk
        )
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            response = service.search(_query_for(db), k=4)
        per_shard_reads = sum(shard.disk.stats.reads for shard in sharded.shards)
        assert response.stats.disk_reads == per_shard_reads
        assert service.stats().disk_reads == response.stats.disk_reads

    def test_search_stats_merge_sums_every_field(self):
        """SearchStats.merge is field-driven: every declared counter sums,
        so a newly added counter can never silently vanish from the
        sharded aggregate."""
        from dataclasses import fields

        from repro.core.context import SearchStats

        a, b = SearchStats(), SearchStats()
        for i, f in enumerate(fields(SearchStats)):
            setattr(a, f.name, i + 1)
            setattr(b, f.name, 100 * (i + 1))
        total = SearchStats.merged([a, b])
        for i, f in enumerate(fields(SearchStats)):
            assert getattr(total, f.name) == 101 * (i + 1), f.name

    def test_shared_threshold_never_increases_work(self, db):
        """The distributed-top-k threshold only ever *prunes*: a fan-out
        query's merged counters are bounded by running each shard engine
        standalone (each shard re-proving termination alone), while every
        shard still contributes at least one retrieval round."""
        from repro.core.context import SearchStats
        from repro.core.engine import GATSearchEngine

        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        query = _query_for(db)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            merged = service.search(query, k=4).stats
        standalone = SearchStats.merged(
            [
                GATSearchEngine(shard, apl_cache_size=0).execute(query, 4).stats
                for shard in sharded.shards
            ]
        )
        assert merged.rounds >= 3  # every shard ran
        for field in (
            "cells_popped",
            "candidates_retrieved",
            "validated",
            "distance_computations",
        ):
            assert 0 < getattr(merged, field) <= getattr(standalone, field), field

    def test_service_counts_queries_and_cache_rates(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(sharded, executor="thread") as service:
            queries = [_query_for(db, seed=s) for s in (1, 2, 3)]
            service.search_many(queries, k=3)
            service.search_many(queries, k=3)  # all hits
            stats = service.stats()
        assert stats.queries == 6
        assert stats.result_cache_hits == 3
        assert 0.0 <= stats.apl_cache_hit_rate <= 1.0
        assert stats.latency_p95_s >= stats.latency_p50_s >= 0.0
        assert stats.qps > 0.0


class TestLifecycle:
    def test_close_is_idempotent(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(sharded, executor="thread")
        service.search(_query_for(db), k=2)
        service.close()
        service.close()

    def test_unknown_executor_rejected(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with pytest.raises(ValueError):
            ShardedQueryService(sharded, executor="fiber")
