"""ShardedQueryService behaviour: result cache, invalidation, stats."""

import copy

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.index import GATConfig
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.core.query import Query, QueryPoint
from repro.shard import ShardedGATIndex, ShardedQueryService
from repro.storage.disk import SimulatedDisk

CONFIG = GATConfig(depth=4, memory_levels=3)


@pytest.fixture()
def db(tiny_db):
    # Mutating tests get their own copy; the session fixture stays pristine.
    return copy.deepcopy(tiny_db)


def _query_for(db, seed=17):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=seed)
    )
    return gen.query()


def _perfect_match_insert(db, query_points):
    """A fresh trajectory that matches *query_points* at distance zero."""
    tid = max(tr.trajectory_id for tr in db) + 1
    return ActivityTrajectory(
        tid, [TrajectoryPoint(p.x, p.y, frozenset(p.activities)) for p in query_points]
    )


class TestResultCache:
    def test_repeat_is_served_from_cache(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        with ShardedQueryService(sharded, executor="serial") as service:
            query = _query_for(db)
            first = service.search(query, k=4)
            second = service.search(query, k=4)
            assert second.stats.rounds == 0  # zero engine work
            assert [
                (r.trajectory_id, r.distance) for r in second.results
            ] == [(r.trajectory_id, r.distance) for r in first.results]
            stats = service.stats()
            assert stats.result_cache_lookups == 2
            assert stats.result_cache_hits == 1

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_insert_into_any_shard_invalidates(self, db, executor):
        """Cross-shard invalidation: the insert lands on *one* shard, yet
        every cached result — whichever shards produced it — is dropped,
        and the recomputed answer sees the new trajectory.  With the
        process backend this also exercises the worker-snapshot refresh
        (stale workers could never return the new trajectory)."""
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        with ShardedQueryService(sharded, executor=executor) as service:
            query = _query_for(db)
            service.search(query, k=3)
            cached = service.search(query, k=3)
            assert cached.stats.rounds == 0

            new_tr = _perfect_match_insert(db, list(query))
            sharded.insert_trajectory(new_tr)

            refreshed = service.search(query, k=3)
            assert refreshed.stats.rounds > 0  # recomputed, not served stale
            assert refreshed.results[0].trajectory_id == new_tr.trajectory_id
            assert refreshed.results[0].distance == 0.0

    def test_direct_shard_insert_also_invalidates(self, db):
        """The composite version reads through to the shards, so even an
        insert issued against one shard's GATIndex (bypassing the facade)
        drops the cache."""
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(sharded, executor="serial") as service:
            query = _query_for(db)
            service.search(query, k=3)
            assert service.search(query, k=3).stats.rounds == 0

            new_tr = _perfect_match_insert(db, list(query))
            owner = sharded.shard_of(new_tr.trajectory_id)
            sharded.shards[owner].insert_trajectory(new_tr)

            assert service.search(query, k=3).stats.rounds > 0

    def test_cache_disabled(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            query = _query_for(db)
            service.search(query, k=3)
            again = service.search(query, k=3)
            assert again.stats.rounds > 0
            assert service.stats().result_cache_lookups == 0


class TestAggregatedStats:
    def test_disk_reads_sum_over_shards(self, db):
        sharded = ShardedGATIndex.build(
            db, n_shards=3, config=CONFIG, disk_factory=SimulatedDisk
        )
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            response = service.search(_query_for(db), k=4)
        per_shard_reads = sum(shard.disk.stats.reads for shard in sharded.shards)
        assert response.stats.disk_reads == per_shard_reads
        assert service.stats().disk_reads == response.stats.disk_reads

    def test_search_stats_merge_sums_every_field(self):
        """SearchStats.merge is field-driven: every declared counter sums,
        so a newly added counter can never silently vanish from the
        sharded aggregate."""
        from dataclasses import fields

        from repro.core.context import SearchStats

        a, b = SearchStats(), SearchStats()
        for i, f in enumerate(fields(SearchStats)):
            setattr(a, f.name, i + 1)
            setattr(b, f.name, 100 * (i + 1))
        total = SearchStats.merged([a, b])
        for i, f in enumerate(fields(SearchStats)):
            assert getattr(total, f.name) == 101 * (i + 1), f.name

    def test_shared_threshold_never_increases_work(self, db):
        """The distributed-top-k threshold only ever *prunes*: a fan-out
        query's merged counters are bounded by running each shard engine
        standalone (each shard re-proving termination alone), while every
        shard still contributes at least one retrieval round."""
        from repro.core.context import SearchStats
        from repro.core.engine import GATSearchEngine

        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        query = _query_for(db)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            merged = service.search(query, k=4).stats
        standalone = SearchStats.merged(
            [
                GATSearchEngine(shard, apl_cache_size=0).execute(query, 4).stats
                for shard in sharded.shards
            ]
        )
        assert merged.rounds >= 3  # every shard ran
        for field in (
            "cells_popped",
            "candidates_retrieved",
            "validated",
            "distance_computations",
        ):
            assert 0 < getattr(merged, field) <= getattr(standalone, field), field

    def test_service_counts_queries_and_cache_rates(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(sharded, executor="thread") as service:
            queries = [_query_for(db, seed=s) for s in (1, 2, 3)]
            service.search_many(queries, k=3)
            service.search_many(queries, k=3)  # all hits
            stats = service.stats()
        assert stats.queries == 6
        assert stats.result_cache_hits == 3
        assert 0.0 <= stats.apl_cache_hit_rate <= 1.0
        assert stats.latency_p95_s >= stats.latency_p50_s >= 0.0
        assert stats.qps > 0.0


class TestLifecycle:
    def test_close_is_idempotent(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(sharded, executor="thread")
        service.search(_query_for(db), k=2)
        service.close()
        service.close()

    def test_unknown_executor_rejected(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with pytest.raises(ValueError):
            ShardedQueryService(sharded, executor="fiber")


class TestUseAfterClose:
    """Regression: the lazily created pools must not be silently
    resurrected by a search() on a closed service — pre-fix, run() after
    close() leaked a brand-new pool that nothing ever shut down."""

    def test_thread_backend_raises(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(
            sharded, executor="thread", result_cache_size=0
        )
        service.search(_query_for(db), k=2)
        service.close()
        with pytest.raises(RuntimeError, match="after close"):
            service.search(_query_for(db), k=2)

    def test_process_backend_raises(self, db):
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        # Never spawns workers: close() precedes the first search, and the
        # use-after-close check fires before pool creation.
        service = ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        )
        service.close()
        with pytest.raises(RuntimeError, match="after close"):
            service.search(_query_for(db), k=2)

    def test_executor_close_stays_idempotent(self, db):
        from repro.shard import ThreadShardExecutor

        executor = ThreadShardExecutor(lambda task: task, max_workers=2)
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="after close"):
            executor.run([None])


class TestSharedStateHammer:
    def test_concurrent_batches_race_shared_topk_registry(self, db):
        """Hammer the _shared group registry: many client threads register
        and pop groups while pool workers look their tasks' groups up.
        The lookup now locks (an unlocked dict read races the writers'
        rehash); rankings must stay byte-identical to a serial run."""
        import threading as _threading

        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        queries = [_query_for(db, seed=s) for s in range(6)]
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as serial:
            expected = [
                [(r.trajectory_id, r.distance) for r in resp.results]
                for resp in serial.search_many(queries, k=3)
            ]
        with ShardedQueryService(
            sharded, executor="thread", result_cache_size=0, max_workers=8
        ) as service:
            failures = []

            def client():
                try:
                    for _ in range(3):
                        responses = service.search_many(queries, k=3)
                        got = [
                            [(r.trajectory_id, r.distance) for r in resp.results]
                            for resp in responses
                        ]
                        if got != expected:
                            failures.append(got)
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(exc)

            threads = [_threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not failures


class TestProcessSlotLifecycle:
    def test_run_failure_releases_every_leased_slot(self, db, monkeypatch):
        """An exception inside executor.run() must travel through
        _run_many's finally and return every leased threshold slot —
        otherwise a crashing batch permanently shrinks the pruning-slot
        pool."""
        from repro.shard import ProcessShardExecutor

        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        )
        executor = service._executor
        assert isinstance(executor, ProcessShardExecutor)
        leased_during_run = []

        def boom(tasks):
            leased_during_run.append(
                executor.N_SLOTS - len(executor._free_slots)
            )
            raise RuntimeError("worker pool exploded")

        monkeypatch.setattr(executor, "run", boom)
        queries = [_query_for(db, seed=s) for s in (1, 2, 3)]
        with pytest.raises(RuntimeError, match="exploded"):
            service.search_many(queries, k=3)
        # One slot per pending query was genuinely leased inside run()...
        assert leased_during_run == [3]
        # ...and every one of them came back despite the exception.
        assert sorted(executor._free_slots) == list(range(executor.N_SLOTS))
        service.close()

    def test_slot_pool_exhaustion_returns_none(self, db):
        from repro.shard import ProcessShardExecutor

        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(sharded, executor="process")
        executor = service._executor
        slots = [executor.acquire_slot() for _ in range(executor.N_SLOTS)]
        assert None not in slots
        assert executor.acquire_slot() is None  # exhausted, not an error
        for slot in slots:
            executor.release_slot(slot)
        assert len(executor._free_slots) == executor.N_SLOTS
        service.close()


class TestShardedBatchedExplain:
    def test_search_many_forwards_explain(self, db):
        """Regression: the sharded search_many dropped ``explain`` too."""
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        queries = [_query_for(db, seed=s) for s in (1, 2, 3)]
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            batched = service.search_many(queries, k=3, explain=True)
            assert all(resp.request.explain for resp in batched)
            for query, response in zip(queries, batched):
                single = service.search(query, k=3, explain=True)
                assert [
                    (r.trajectory_id, r.distance, r.matches)
                    for r in response.results
                ] == [
                    (r.trajectory_id, r.distance, r.matches)
                    for r in single.results
                ]
                assert all(r.matches is not None for r in response.results)


class TestOverflowInsertEngineRefresh:
    @staticmethod
    def _outside_trajectory(db, sharded):
        """A fresh trajectory just past the global corner — outside every
        shard's (local) grid box, so inserting it forces the owning
        shard's overflow rebuild, which *replaces* the GATIndex object."""
        box = db.bounding_box
        anchor = next(p for tr in db for p in tr if p.activities)
        tid = max(tr.trajectory_id for tr in db) + 1
        point = TrajectoryPoint(
            box.max_x + 2.0, box.max_y + 2.0, frozenset(anchor.activities)
        )
        return ActivityTrajectory(tid, [point])

    def test_engines_rebound_after_overflow_rebuild(self, db):
        """Regression: an overflow insert swaps a rebuilt GATIndex into
        index.shards[sid]; the service's per-shard engine (built at
        construction) must be rebound to it, or searches keep hitting
        the orphaned pre-insert snapshot and never see the newcomer."""
        from repro.core.query import Query, QueryPoint

        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            trajectory = self._outside_trajectory(db, sharded)
            query = Query(
                [
                    QueryPoint(
                        trajectory[0].x,
                        trajectory[0].y,
                        frozenset(list(trajectory[0].activities)[:1]),
                    )
                ]
            )
            service.search(query, k=1)  # engines warm on the old indexes
            owner = sharded.shard_of(trajectory.trajectory_id)
            old_engine = service.engines[owner]

            sharded.insert_trajectory(trajectory)  # overflow rebuild

            response = service.search(query, k=1)
            assert response.results[0].trajectory_id == trajectory.trajectory_id
            assert response.results[0].distance == 0.0
            assert service.engines[owner] is not old_engine
            assert service.engines[owner].index is sharded.shards[owner]

    def test_cache_hit_rates_stay_valid_after_engine_refresh(self, db):
        """Regression: the discarded engine's APL counters (and the
        orphaned index's HICL counters) must leave the stats baselines
        when an overflow insert rebinds a shard's engine — otherwise the
        delta hit rates go negative or clamp to a bogus 0.0."""
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        queries = [_query_for(db, seed=s) for s in (1, 2, 3)]
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            # Warm the caches so they hold counters at baseline time...
            for _ in range(4):
                service.search_many(queries, k=3)
            service.reset_stats()
            # ...and keep serving warm traffic after the reset.
            service.search_many(queries, k=3)
            trajectory = self._outside_trajectory(db, sharded)
            sharded.insert_trajectory(trajectory)  # rebinds owner's engine
            service.search_many(queries, k=3)
            stats = service.stats()
            assert 0.0 < stats.apl_cache_hit_rate <= 1.0
            assert 0.0 < stats.hicl_cache_hit_rate <= 1.0


class TestSerialUseAfterClose:
    def test_serial_backend_raises(self, db):
        """The serial backend honours the same invariant as the pooled
        ones: a closed service's engines have shut their auxiliary
        pools, so serving on must fail loudly, not resurrect them."""
        sharded = ShardedGATIndex.build(db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        )
        service.search(_query_for(db), k=2)
        service.close()
        service.close()  # still idempotent
        with pytest.raises(RuntimeError, match="after close"):
            service.search(_query_for(db), k=2)
