"""ShardedGATIndex construction, insert routing, and aggregate accounting."""

import pytest

from repro.index.gat.index import GATConfig
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.shard import ShardedGATIndex, ShardRouter

CONFIG = GATConfig(depth=4, memory_levels=3)


def _fresh_trajectory(db, tid=None):
    """A new trajectory inside the index box, reusing known activities."""
    anchor = db.trajectories[0]
    points = [
        TrajectoryPoint(p.x, p.y, frozenset(p.activities))
        for p in anchor
        if p.activities
    ]
    if tid is None:
        tid = max(tr.trajectory_id for tr in db) + 1
    return ActivityTrajectory(tid, points)


class TestBuild:
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_shards_cover_database_disjointly(self, tiny_db, strategy):
        sharded = ShardedGATIndex.build(
            tiny_db, n_shards=4, config=CONFIG, strategy=strategy
        )
        seen = []
        for shard in sharded.shards:
            seen.extend(tr.trajectory_id for tr in shard.db)
        assert sorted(seen) == sorted(tr.trajectory_id for tr in tiny_db)
        assert len(sharded) == len(tiny_db)

    def test_local_boxes_cover_each_shards_own_points(self, tiny_db):
        """Default build: each shard's grid spans its own trajectories'
        (padded) bounding box, which the global box always contains."""
        sharded = ShardedGATIndex.build(tiny_db, n_shards=4, config=CONFIG)
        global_box = tiny_db.bounding_box
        for shard in sharded.shards:
            box = shard.grid.box
            assert box == shard.db.bounding_box
            for tr in shard.db:
                for p in tr:
                    assert box.min_x <= p.x <= box.max_x
                    assert box.min_y <= p.y <= box.max_y
            assert global_box.min_x <= box.min_x and box.max_x <= global_box.max_x
            assert global_box.min_y <= box.min_y and box.max_y <= global_box.max_y
        assert sharded.shard_boxes == tuple(s.grid.box for s in sharded.shards)

    def test_global_box_mode_spans_every_shard(self, tiny_db):
        sharded = ShardedGATIndex.build(
            tiny_db, n_shards=4, config=CONFIG, shard_box="global"
        )
        boxes = {shard.grid.box for shard in sharded.shards}
        assert boxes == {tiny_db.bounding_box}

    def test_unknown_shard_box_rejected(self, tiny_db):
        with pytest.raises(ValueError, match="shard_box"):
            ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG, shard_box="tight")

    def test_empty_shard_is_rejected(self, tiny_db):
        with pytest.raises(ValueError, match="empty"):
            ShardedGATIndex.build(
                tiny_db, n_shards=len(tiny_db) + 5, config=CONFIG, strategy="hash"
            )

    def test_shard_count_mismatch_rejected(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        router3 = ShardRouter.for_database(tiny_db, 3)
        with pytest.raises(ValueError):
            ShardedGATIndex(tiny_db, router3, sharded.shards)

    def test_disk_factory_used_per_shard(self, tiny_db):
        from repro.storage.disk import SimulatedDisk

        disks = []

        def factory():
            disk = SimulatedDisk(read_latency_s=0.0)
            disks.append(disk)
            return disk

        sharded = ShardedGATIndex.build(
            tiny_db, n_shards=3, config=CONFIG, disk_factory=factory
        )
        assert [shard.disk for shard in sharded.shards] == disks
        assert len(set(map(id, disks))) == 3  # one private disk per shard


class TestInsertRouting:
    @pytest.mark.parametrize("strategy", ["hash", "range"])
    def test_insert_lands_on_exactly_the_routed_shard(self, tiny_db, strategy):
        import copy

        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=4, config=CONFIG, strategy=strategy)
        trajectory = _fresh_trajectory(db)
        tid = trajectory.trajectory_id
        owner = sharded.shard_of(tid)
        before = sharded.version

        sharded.insert_trajectory(trajectory)

        assert tid in sharded.shards[owner].db
        assert tid in sharded.shards[owner].apl
        for sid, shard in enumerate(sharded.shards):
            if sid != owner:
                assert tid not in shard.db
        assert tid in db  # global registry updated too
        # Composite version: exactly the owner's component moved.
        after = sharded.version
        assert after != before
        assert [a - b for a, b in zip(after, before)] == [
            1 if sid == owner else 0 for sid in range(4)
        ]

    def test_duplicate_id_rejected_across_shards(self, tiny_db):
        import copy

        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=4, config=CONFIG)
        # An id that certainly lives on *some* shard already.
        existing = db.trajectories[7].trajectory_id
        versions = sharded.version
        with pytest.raises(ValueError, match="already present"):
            sharded.insert_trajectory(_fresh_trajectory(db, tid=existing))
        assert sharded.version == versions  # nothing mutated

    def test_inserted_trajectory_found_by_search(self, tiny_db):
        """A perfect-match insert must surface as the top result — the end
        to end proof that routing hit a live, queryable shard."""
        import copy

        from repro.core.engine import GATSearchEngine
        from repro.core.query import Query, QueryPoint

        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        trajectory = _fresh_trajectory(db)
        sharded.insert_trajectory(trajectory)
        query = Query(
            [
                QueryPoint(p.x, p.y, frozenset(list(p.activities)[:1]))
                for p in list(trajectory)[:2]
            ]
        )
        owner = sharded.shard_of(trajectory.trajectory_id)
        engine = GATSearchEngine(sharded.shards[owner])
        # k=2: the anchor the new trajectory copies also scores 0.0 and
        # wins the id tie-break when it shares the shard.
        top = engine.atsq(query, k=2)
        assert (trajectory.trajectory_id, 0.0) in [
            (r.trajectory_id, r.distance) for r in top
        ]


class TestAggregates:
    def test_costs_sum_over_shards(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=3, config=CONFIG)
        assert sharded.memory_cost_bytes() == sum(
            s.memory_cost_bytes() for s in sharded.shards
        )
        assert sharded.disk_cost_bytes() == sum(
            s.disk_cost_bytes() for s in sharded.shards
        )

    def test_disk_stats_sum_without_double_counting(self, tiny_db):
        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        # Touch one shard's disk only.
        tid = next(iter(sharded.shards[0].db)).trajectory_id
        sharded.shards[0].apl.fetch(tid)
        total = sharded.disk_stats()
        assert total.reads == sharded.shards[0].disk.stats.reads
        assert sharded.shards[1].disk.stats.reads == 0
