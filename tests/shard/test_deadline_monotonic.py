"""Deadline arithmetic must survive wall-clock abuse.

Every deadline in the serving stack — the fan-out supervisor's per-query
budget and the front-end's admission budget — is anchored to
``time.monotonic()``.  These are regression tests pinning that down: a
host whose wall clock is backdated by NTP (or jumps forward hours
per call) must neither spuriously expire in-budget queries nor keep
genuinely stalled ones alive.
"""

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro.core.context import SearchStats
from repro.serving.admission import AdmissionController, ServingConfig
from repro.shard.executor import ShardResult, ShardTask
from repro.shard.resilience import DeadlineExceeded, FanoutSupervisor, FaultPolicy


def make_task(shard_id: int) -> ShardTask:
    # The supervisor never looks inside `query`; a stub runner does the
    # answering, so None is fine here.
    return ShardTask(shard_id=shard_id, query=None, k=1)


def answer(task: ShardTask, delay_s: float = 0.0) -> ShardResult:
    if delay_s:
        time.sleep(delay_s)
    return ShardResult(
        shard_id=task.shard_id, results=(), stats=SearchStats(), latency_s=delay_s
    )


@pytest.fixture
def pool():
    with ThreadPoolExecutor(max_workers=4) as executor:
        yield executor


@pytest.fixture
def hostile_wall_clock(monkeypatch):
    """``time.time`` starts 10k seconds in the past and leaps forward by
    an hour on every call — both failure modes (backdated and runaway) at
    once.  Monotonic-based code never notices; wall-based deadline math
    would expire everything instantly."""
    jumps = itertools.count()

    def unhinged() -> float:
        return time.monotonic() - 10_000.0 + 3600.0 * next(jumps)

    monkeypatch.setattr(time, "time", unhinged)


class TestSupervisorDeadlines:
    def test_wall_clock_jumps_cannot_expire_inflight_queries(
        self, pool, hostile_wall_clock
    ):
        """Tasks well inside the monotonic budget must all complete even
        while ``time.time`` leaps hours between supervisor iterations."""
        supervisor = FanoutSupervisor(
            submit=lambda t: pool.submit(answer, t, 0.02),
            policy=FaultPolicy(deadline_s=5.0, max_retries=0, hedge_after_s=None),
        )
        (outcome,) = supervisor.run([[make_task(0), make_task(1)]])
        assert not outcome.failures
        assert sorted(outcome.results) == [0, 1]

    def test_genuine_stall_still_expires(self, pool, hostile_wall_clock):
        """The monotonic deadline is still a real deadline: a stalled
        shard resolves as DeadlineExceeded, promptly, clock abuse or not."""
        release = threading.Event()

        def stall(task: ShardTask) -> ShardResult:
            release.wait(5.0)
            return answer(task)

        supervisor = FanoutSupervisor(
            submit=lambda t: pool.submit(stall, t),
            policy=FaultPolicy(deadline_s=0.05, max_retries=0, hedge_after_s=None),
        )
        t0 = time.monotonic()
        (outcome,) = supervisor.run([[make_task(0)]])
        elapsed = time.monotonic() - t0
        release.set()  # let the abandoned attempt drain
        assert not outcome.results
        failure = outcome.failures[0]
        assert isinstance(failure, DeadlineExceeded)
        assert failure.deadline_s == pytest.approx(0.05)
        assert elapsed < 2.0  # expired on budget, not on the stall

    def test_override_tightens_policy_budget(self, pool):
        """A per-query override below ``policy.deadline_s`` wins."""
        release = threading.Event()

        def stall(task: ShardTask) -> ShardResult:
            release.wait(5.0)
            return answer(task)

        supervisor = FanoutSupervisor(
            submit=lambda t: pool.submit(stall, t),
            policy=FaultPolicy(deadline_s=30.0, max_retries=0, hedge_after_s=None),
        )
        (outcome,) = supervisor.run([[make_task(0)]], deadlines=[0.05])
        release.set()
        failure = outcome.failures[0]
        assert isinstance(failure, DeadlineExceeded)
        assert failure.deadline_s == pytest.approx(0.05)

    def test_override_cannot_extend_policy_budget(self, pool):
        """An override larger than the policy budget is clamped down —
        a caller cannot buy more time than the operator configured."""
        release = threading.Event()

        def stall(task: ShardTask) -> ShardResult:
            release.wait(5.0)
            return answer(task)

        supervisor = FanoutSupervisor(
            submit=lambda t: pool.submit(stall, t),
            policy=FaultPolicy(deadline_s=0.05, max_retries=0, hedge_after_s=None),
        )
        (outcome,) = supervisor.run([[make_task(0)]], deadlines=[60.0])
        release.set()
        failure = outcome.failures[0]
        assert isinstance(failure, DeadlineExceeded)
        assert failure.deadline_s == pytest.approx(0.05)

    def test_mixed_per_query_deadlines(self, pool):
        """Overrides are per query: a tight query expires while its
        batchmate (no override) completes under the roomy policy."""
        supervisor = FanoutSupervisor(
            submit=lambda t: pool.submit(answer, t, 0.1),
            policy=FaultPolicy(deadline_s=30.0, max_retries=0, hedge_after_s=None),
        )
        tight, roomy = supervisor.run(
            [[make_task(0)], [make_task(0)]], deadlines=[0.02, None]
        )
        assert isinstance(tight.failures[0], DeadlineExceeded)
        assert not roomy.failures and 0 in roomy.results


class TestAdmissionClock:
    def test_admission_budget_immune_to_wall_clock(self, hostile_wall_clock):
        """The admission controller (default clock: monotonic) must not
        shed or expire on wall-clock jumps: a ticket dispatched right
        away keeps essentially its whole budget."""
        ctrl = AdmissionController(ServingConfig())
        ctrl.ewma.prime(0.01)
        ticket = ctrl.admit(deadline_s=10.0)
        remaining = ctrl.dispatch(ticket)
        assert remaining == pytest.approx(10.0, abs=0.5)
