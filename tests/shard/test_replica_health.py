"""The per-replica circuit breaker and its router integration.

All state-machine tests drive :class:`ReplicaHealth` with a fake clock —
the eject → probation → probe → restore timeline never sleeps.  The
router tests pin two properties: health steers routing around ejected
replicas, and with everything healthy the pick sequences are
bit-identical to routers with no breaker attached at all.
"""

import pytest

from repro.shard import BreakerConfig, ReplicaHealth
from repro.shard.replicas import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    BREAKER_PROBING,
    LeastInFlightRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    make_replica_router,
)

N_REPLICAS = 3


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def health(clock):
    return ReplicaHealth(
        n_shards=1,
        n_replicas=N_REPLICAS,
        config=BreakerConfig(failure_threshold=3, probation_after_s=1.0),
        clock=clock,
    )


def _fail(health, replica, times=1, shard=0):
    for _ in range(times):
        health.record_failure(shard, replica)


# ----------------------------------------------------------------------
# BreakerConfig validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs", [{"failure_threshold": 0}, {"probation_after_s": 0.0}]
)
def test_breaker_config_rejects_degenerate_knobs(kwargs):
    with pytest.raises(ValueError):
        BreakerConfig(**kwargs)


# ----------------------------------------------------------------------
# State machine
# ----------------------------------------------------------------------
def test_consecutive_failures_eject_a_replica(health):
    _fail(health, replica=1, times=2)
    assert health.state(0, 1) == BREAKER_CLOSED
    _fail(health, replica=1)
    assert health.state(0, 1) == BREAKER_OPEN
    assert health.ejections == 1
    assert health.candidates(0) == [0, 2]


def test_success_resets_the_consecutive_count(health):
    _fail(health, replica=0, times=2)
    health.record_success(0, 0)
    _fail(health, replica=0, times=2)
    assert health.state(0, 0) == BREAKER_CLOSED  # never 3 in a row


def test_probation_admits_exactly_one_probe(health, clock):
    _fail(health, replica=2, times=3)
    assert 2 not in health.candidates(0)
    clock.advance(1.5)
    assert 2 in health.candidates(0)  # probation expired: probe-eligible
    health.note_leased(0, 2)  # routing the replica IS the probe
    assert health.state(0, 2) == BREAKER_PROBING
    assert health.probes == 1
    # While the probe is in flight the replica is not offered again.
    assert 2 not in health.candidates(0)


def test_probe_success_restores_the_replica(health, clock):
    _fail(health, replica=1, times=3)
    clock.advance(1.5)
    health.note_leased(0, 1)
    health.record_success(0, 1)
    assert health.state(0, 1) == BREAKER_CLOSED
    assert health.restores == 1
    assert health.candidates(0) == [0, 1, 2]


def test_probe_failure_reejects_for_another_interval(health, clock):
    _fail(health, replica=1, times=3)
    clock.advance(1.5)
    health.note_leased(0, 1)
    health.record_failure(0, 1)
    assert health.state(0, 1) == BREAKER_OPEN
    assert health.ejections == 2
    assert 1 not in health.candidates(0)
    clock.advance(0.5)
    assert 1 not in health.candidates(0)  # new interval, not the old one
    clock.advance(0.6)
    assert 1 in health.candidates(0)


def test_abandoned_probe_does_not_wedge_probing(health, clock):
    """A probe the supervisor deadline-abandons never reports an outcome;
    after a full probation interval the replica must become routable
    again instead of staying PROBING forever."""
    _fail(health, replica=0, times=3)
    clock.advance(1.5)
    health.note_leased(0, 0)
    assert 0 not in health.candidates(0)  # probe outstanding
    clock.advance(1.1)
    assert 0 in health.candidates(0)  # anti-wedge re-admission
    assert health.state(0, 0) == BREAKER_PROBING


def test_straggler_success_after_ejection_is_ignored(health):
    _fail(health, replica=2, times=3)
    health.record_success(0, 2)  # an attempt from before the ejection
    assert health.state(0, 2) == BREAKER_OPEN


def test_all_replicas_down_yields_empty_candidates(health):
    for replica in range(N_REPLICAS):
        _fail(health, replica=replica, times=3)
    assert health.candidates(0) == []


# ----------------------------------------------------------------------
# Router integration
# ----------------------------------------------------------------------
def test_round_robin_routes_around_ejected_replica(clock):
    router = RoundRobinRouter(
        1,
        N_REPLICAS,
        breaker=BreakerConfig(failure_threshold=1, probation_after_s=60.0),
        clock=clock,
    )
    router.record_failure(0, 1)
    assert router.replica_state(0, 1) == BREAKER_OPEN
    picks = [router.route(0) for _ in range(4)]
    assert picks == [0, 2, 0, 2]  # the cursor skips the ejected copy


def test_router_probe_flow_restores_replica(clock):
    router = RoundRobinRouter(
        1,
        2,
        breaker=BreakerConfig(failure_threshold=1, probation_after_s=1.0),
        clock=clock,
    )
    router.record_failure(0, 0)
    assert [router.route(0) for _ in range(3)] == [1, 1, 1]
    clock.advance(2.0)
    # Next lease that lands on the expired replica is the probe.
    picks = {router.route(0) for _ in range(2)}
    assert 0 in picks
    assert router.replica_state(0, 0) == BREAKER_PROBING
    # Only ONE probe: while it's outstanding, everything else goes to 1.
    assert [router.route(0) for _ in range(3)] == [1, 1, 1]
    router.record_success(0, 0)
    assert router.replica_state(0, 0) == BREAKER_CLOSED
    assert router.health.restores == 1


def test_router_serves_even_with_every_replica_ejected(clock):
    router = LeastInFlightRouter(
        1,
        2,
        breaker=BreakerConfig(failure_threshold=1, probation_after_s=60.0),
        clock=clock,
    )
    router.record_failure(0, 0)
    router.record_failure(0, 1)
    # Health degrades routing, never availability: route still answers.
    replica = router.route(0)
    assert replica in (0, 1)
    router.release(0, replica)


# ----------------------------------------------------------------------
# All-healthy bit-parity with the breaker attached
# ----------------------------------------------------------------------
def test_round_robin_sequence_unchanged_by_breaker():
    plain = RoundRobinRouter(2, 3)
    gated = RoundRobinRouter(2, 3, breaker=BreakerConfig())
    for shard in (0, 1):
        assert [plain.route(shard) for _ in range(5)] == [
            gated.route(shard) for _ in range(5)
        ]


def test_least_in_flight_sequence_unchanged_by_breaker():
    plain = LeastInFlightRouter(1, 4)
    gated = LeastInFlightRouter(1, 4, breaker=BreakerConfig())
    assert [plain.route(0) for _ in range(8)] == [
        gated.route(0) for _ in range(8)
    ]


def test_power_of_two_seeded_draws_unchanged_by_breaker():
    plain = PowerOfTwoRouter(1, 4, seed=7)
    gated = PowerOfTwoRouter(1, 4, seed=7, breaker=BreakerConfig())
    assert [plain.route(0) for _ in range(6)] == [
        gated.route(0) for _ in range(6)
    ]


def test_make_replica_router_threads_breaker_through(clock):
    config = BreakerConfig(failure_threshold=1, probation_after_s=5.0)
    for strategy in ("round-robin", "least-in-flight", "power-of-two"):
        router = make_replica_router(
            strategy, 1, 2, seed=3, breaker=config, clock=clock
        )
        assert router.health.config is config
        router.record_failure(0, 0)
        assert router.replica_state(0, 0) == BREAKER_OPEN
