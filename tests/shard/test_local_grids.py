"""Shard-local retrieval grids, spatial routing, and the process-backend
shared threshold.

Parity is the bar throughout: the grid box, the per-shard depth
adaptation, the routing strategy, the fan-out task order, and the shared
k-th threshold all move retrieval *work*, never results — every
configuration must return the single-index ranking byte-for-byte.
"""

import copy
import math

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import GATSearchEngine
from repro.core.query import Query, QueryPoint
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.service import QueryRequest
from repro.shard import ShardedGATIndex, ShardedQueryService, ShardRouter

CONFIG = GATConfig(depth=4, memory_levels=3)
K = 6


@pytest.fixture(scope="module")
def queries(tiny_db):
    gen = QueryWorkloadGenerator(
        tiny_db,
        WorkloadConfig(n_query_points=3, n_activities_per_point=2, seed=97),
    )
    return gen.queries(5)


@pytest.fixture(scope="module")
def expected(tiny_db, queries):
    engine = GATSearchEngine(GATIndex.build(tiny_db, CONFIG))
    out = []
    for i, query in enumerate(queries):
        ranked = engine.execute(query, K, order_sensitive=(i % 2 == 1)).ranked
        out.append([(r.trajectory_id, r.distance) for r in ranked])
    return out


def _served(service, queries):
    return [
        [
            (r.trajectory_id, r.distance)
            for r in service.search(
                q, k=K, order_sensitive=(i % 2 == 1)
            ).results
        ]
        for i, q in enumerate(queries)
    ]


# ----------------------------------------------------------------------
# Spatial routing
# ----------------------------------------------------------------------
class TestSpatialRouter:
    def test_balanced_total_partition(self, tiny_db):
        router = ShardRouter.for_database(tiny_db, 4, "spatial")
        parts = router.partition(tr.trajectory_id for tr in tiny_db)
        sizes = sorted(len(p) for p in parts)
        assert sum(sizes) == len(tiny_db)
        assert sizes[-1] - sizes[0] <= 1  # equal-cardinality chunks

    def test_deterministic_directory(self, tiny_db):
        a = ShardRouter.for_database(tiny_db, 3, "spatial")
        b = ShardRouter.for_database(tiny_db, 3, "spatial")
        ids = [tr.trajectory_id for tr in tiny_db]
        assert [a.shard_of(t) for t in ids] == [b.shard_of(t) for t in ids]

    def test_unknown_id_falls_back_to_hash(self, tiny_db):
        router = ShardRouter.for_database(tiny_db, 3, "spatial")
        fresh = max(tr.trajectory_id for tr in tiny_db) + 17
        assert router.shard_of(fresh) == fresh % 3

    def test_for_ids_rejects_spatial(self):
        with pytest.raises(ValueError, match="geometry"):
            ShardRouter.for_ids(range(10), 2, "spatial")

    def test_assignments_validated(self):
        with pytest.raises(ValueError, match="assignments"):
            ShardRouter(2, "spatial")
        with pytest.raises(ValueError, match="unknown shards"):
            ShardRouter(2, "spatial", assignments={1: 5})
        with pytest.raises(ValueError, match="only apply"):
            ShardRouter(2, "hash", assignments={1: 0})

    def test_spatial_shards_are_more_compact_than_hash(self, tiny_db):
        """The point of spatial routing: smaller per-shard footprints.
        Compared via the summed per-shard box areas (hash shards each span
        ~the whole universe)."""

        def total_area(strategy):
            sharded = ShardedGATIndex.build(
                tiny_db, n_shards=4, config=CONFIG, strategy=strategy
            )
            return sum(box.width * box.height for box in sharded.shard_boxes)

        assert total_area("spatial") < total_area("hash")


# ----------------------------------------------------------------------
# Local grid boxes
# ----------------------------------------------------------------------
class TestLocalGrids:
    @pytest.mark.parametrize("strategy", ["hash", "range", "spatial"])
    @pytest.mark.parametrize("shard_box", ["local", "global"])
    def test_parity_with_single_index(
        self, tiny_db, queries, expected, strategy, shard_box
    ):
        sharded = ShardedGATIndex.build(
            tiny_db, n_shards=3, config=CONFIG, strategy=strategy,
            shard_box=shard_box,
        )
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            assert _served(service, queries) == expected

    def test_depth_adapts_to_compact_shards(self, tiny_db):
        """A shard whose footprint is a fraction of the universe drops
        grid levels so its leaf cells keep the global physical size."""
        box = tiny_db.bounding_box
        shrunk = type(box)(
            box.min_x, box.min_y,
            box.min_x + box.width / 4, box.min_y + box.height / 4,
        )
        adapted = ShardedGATIndex._local_config(CONFIG, box, shrunk)
        assert adapted.depth == CONFIG.depth - 2  # 1/16 the area -> 2 levels
        assert adapted.memory_levels <= adapted.depth
        # A full-universe shard keeps the configured depth.
        assert ShardedGATIndex._local_config(CONFIG, box, box) == CONFIG

    def test_process_spec_carries_per_shard_boxes_and_configs(self, tiny_db):
        sharded = ShardedGATIndex.build(
            tiny_db, n_shards=3, config=CONFIG, strategy="spatial"
        )
        service = ShardedQueryService(sharded, executor="serial")
        try:
            spec = service._make_spec()
            assert spec.bounding_boxes == sharded.shard_boxes
            assert spec.gat_configs == tuple(s.config for s in sharded.shards)
        finally:
            service.close()


# ----------------------------------------------------------------------
# Insert-overflow rebuild
# ----------------------------------------------------------------------
class TestOverflowInsert:
    def _outside_trajectory(self, db, sid, sharded):
        """A trajectory owned by shard *sid* lying outside its local box
        (just past the global corner, reusing known activities)."""
        box = sharded.shards[sid].grid.box
        anchor = next(p for tr in db for p in tr if p.activities)
        tid = max(tr.trajectory_id for tr in db) + 1
        while sharded.shard_of(tid) != sid:
            tid += 1
        point = TrajectoryPoint(
            box.max_x + 1.0, box.max_y + 1.0, frozenset(anchor.activities)
        )
        return ActivityTrajectory(tid, [point])

    def test_insert_outside_box_rebuilds_and_serves(self, tiny_db):
        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        sid = 1
        trajectory = self._outside_trajectory(db, sid, sharded)
        old_box = sharded.shards[sid].grid.box
        before = sharded.version

        sharded.insert_trajectory(trajectory)

        after = sharded.version
        assert after != before
        assert after[sid] == before[sid] + 1  # version strictly advanced
        new_box = sharded.shards[sid].grid.box
        assert new_box.max_x >= trajectory[0].x
        assert new_box.max_y >= trajectory[0].y
        assert new_box.min_x <= old_box.min_x  # expansion, never shrink
        assert trajectory.trajectory_id in sharded.shards[sid].db
        assert trajectory.trajectory_id in sharded.shards[sid].apl

        # A query at the newcomer's location finds it — the rebuilt shard
        # is live and exact.
        query = Query(
            [
                QueryPoint(
                    trajectory[0].x,
                    trajectory[0].y,
                    frozenset(list(trajectory[0].activities)[:1]),
                )
            ]
        )
        engine = GATSearchEngine(sharded.shards[sid])
        top = engine.atsq(query, k=1)
        assert top[0].trajectory_id == trajectory.trajectory_id
        assert top[0].distance == 0.0

    def test_result_cache_invalidated_by_overflow_insert(self, tiny_db, queries):
        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        with ShardedQueryService(sharded, executor="serial") as service:
            first = service.search(queries[0], k=K)
            trajectory = self._outside_trajectory(db, 0, sharded)
            sharded.insert_trajectory(trajectory)
            again = service.search(queries[0], k=K)
            stats = service.stats()
            # Second identical request missed the cache: the composite
            # version moved with the rebuilt shard.
            assert stats.result_cache_lookups == 2
            assert stats.result_cache_hits == 0
            assert [r.trajectory_id for r in again.results] == [
                r.trajectory_id for r in first.results
            ]

    def test_in_box_insert_does_not_rebuild(self, tiny_db):
        db = copy.deepcopy(tiny_db)
        sharded = ShardedGATIndex.build(db, n_shards=3, config=CONFIG)
        anchor = db.trajectories[0]
        tid = max(tr.trajectory_id for tr in db) + 1
        sid = sharded.shard_of(tid)
        # Anchor points may lie outside the owning shard's local box; pick
        # a point from the owning shard's own data instead.
        p = next(p for tr in sharded.shards[sid].db for p in tr if p.activities)
        trajectory = ActivityTrajectory(
            tid, [TrajectoryPoint(p.x, p.y, frozenset(p.activities))]
        )
        index_before = sharded.shards[sid]
        sharded.insert_trajectory(trajectory)
        assert sharded.shards[sid] is index_before  # same index object


# ----------------------------------------------------------------------
# Process-backend shared threshold
# ----------------------------------------------------------------------
class TestProcessThreshold:
    def test_rankings_match_serial(self, tiny_db, queries, expected):
        sharded = ShardedGATIndex.build(
            tiny_db, n_shards=3, config=CONFIG, strategy="spatial"
        )
        with ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        ) as service:
            assert _served(service, queries) == expected

    def test_slot_lease_cycle(self, tiny_db):
        from repro.shard.executor import ProcessShardExecutor

        sharded = ShardedGATIndex.build(tiny_db, n_shards=2, config=CONFIG)
        service = ShardedQueryService(sharded, executor="process")
        try:
            executor = service._executor
            assert isinstance(executor, ProcessShardExecutor)
            slots = [executor.acquire_slot() for _ in range(executor.N_SLOTS)]
            assert None not in slots
            assert len(set(slots)) == executor.N_SLOTS
            assert executor.acquire_slot() is None  # exhausted -> no pruning
            for slot in slots:
                executor.release_slot(slot)
            reacquired = executor.acquire_slot()
            assert reacquired is not None
            # Leasing resets the shared value to +inf.
            assert math.isinf(executor._slots[reacquired].value)
            executor.release_slot(reacquired)
            executor.release_slot(None)  # no-op
        finally:
            service.close()

    def test_slot_threshold_publishes_fleet_minimum(self):
        import multiprocessing

        from repro.core.results import SearchResult
        from repro.shard.executor import _SlotThreshold

        value = multiprocessing.Value("d", math.inf)
        a = _SlotThreshold(value, k=2)
        b = _SlotThreshold(value, k=2)
        assert a.threshold() == math.inf
        a.offer(SearchResult(1, 5.0))
        assert a.threshold() == math.inf  # fewer than k locally
        a.offer(SearchResult(2, 3.0))
        assert a.threshold() == 5.0  # local k-th published
        b.offer(SearchResult(3, 2.0))
        b.offer(SearchResult(4, 1.0))
        assert b.threshold() == 2.0  # tighter shard wins the minimum
        a.offer(SearchResult(5, 9.0))  # worse result cannot loosen it
        assert a.threshold() == 2.0
