"""TaskLatencyTracker edge cases and the hedge-delay floor.

The tracker feeds :meth:`FanoutSupervisor._hedge_delay`, so its window
semantics (empty, single-sample, eviction) and the interaction between
the learned quantile, the ``_MIN_HEDGE_DELAY_S`` floor, and the
``hedge_after_s`` fallback are pinned here.
"""

import pytest

from repro.obs import nearest_rank
from repro.shard.resilience import (
    _MIN_HEDGE_DELAY_S,
    FanoutSupervisor,
    FaultPolicy,
    TaskLatencyTracker,
)


class TestWindowSemantics:
    def test_empty_window_has_no_quantile(self):
        tracker = TaskLatencyTracker()
        assert len(tracker) == 0
        assert tracker.quantile(0.5) is None
        assert tracker.quantile(0.95) is None

    def test_single_sample_is_every_quantile(self):
        tracker = TaskLatencyTracker()
        tracker.record(0.042)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert tracker.quantile(q) == 0.042

    def test_window_evicts_oldest_first(self):
        tracker = TaskLatencyTracker(window=3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            tracker.record(v)
        assert len(tracker) == 3
        # 1.0 and 2.0 fell off the back: the min is now the third sample.
        assert tracker.quantile(0.0) == 3.0
        assert tracker.quantile(1.0) == 5.0

    def test_quantile_is_insertion_order_independent(self):
        """The window sorts before ranking — recent-but-fast samples must
        not read as the high quantile."""
        tracker = TaskLatencyTracker()
        for v in (0.5, 0.1, 0.9, 0.2):
            tracker.record(v)
        assert tracker.quantile(1.0) == 0.9

    def test_quantile_matches_the_shared_definition(self):
        values = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07]
        tracker = TaskLatencyTracker()
        for v in values:
            tracker.record(v)
        for q in (0.25, 0.5, 0.75, 0.95, 0.99):
            assert tracker.quantile(q) == nearest_rank(values, q)


def _supervisor(policy, tracker):
    return FanoutSupervisor(submit=lambda task: None, policy=policy, tracker=tracker)


class TestHedgeDelay:
    def test_disabled_when_policy_has_no_hedging(self):
        sup = _supervisor(FaultPolicy(), TaskLatencyTracker())
        assert sup._hedge_delay() is None

    def test_cold_tracker_falls_back_to_policy_constant(self):
        policy = FaultPolicy(hedge_after_s=0.25, hedge_min_samples=20)
        tracker = TaskLatencyTracker()
        sup = _supervisor(policy, tracker)
        for _ in range(19):  # one short of the confidence threshold
            tracker.record(0.001)
        assert sup._hedge_delay() == 0.25

    def test_warm_tracker_uses_the_learned_quantile(self):
        policy = FaultPolicy(
            hedge_after_s=0.25, hedge_quantile=0.95, hedge_min_samples=5
        )
        tracker = TaskLatencyTracker()
        for v in (0.01, 0.02, 0.03, 0.04, 0.05):
            tracker.record(v)
        sup = _supervisor(policy, tracker)
        assert sup._hedge_delay() == pytest.approx(0.05)

    def test_learned_quantile_is_floored(self):
        """A fleet of microsecond tasks must not hedge faster than the
        pool can context-switch: the floor wins over the quantile."""
        policy = FaultPolicy(hedge_after_s=0.25, hedge_min_samples=5)
        tracker = TaskLatencyTracker()
        for _ in range(50):
            tracker.record(1e-6)
        sup = _supervisor(policy, tracker)
        assert sup._hedge_delay() == _MIN_HEDGE_DELAY_S
