"""Global hedge budget: hedging must cut tails without amplifying load.

``FaultPolicy.hedge_budget`` caps live hedge attempts at a fraction of
all live attempts.  A denied hedge permanently consumes that shard's one
hedge opportunity and is counted — through ``FanoutOutcome``, the
service's ``stats()``, and the Prometheus surface — so operators can see
hedging being throttled under load.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.context import SearchStats
from repro.obs import Observability
from repro.service.service import as_request
from repro.shard import FaultPolicy, ShardedGATIndex, ShardedQueryService
from repro.shard.executor import ShardResult, ShardTask
from repro.shard.resilience import FanoutSupervisor
from repro.storage.disk import SimulatedDisk


def make_task(shard_id: int) -> ShardTask:
    return ShardTask(shard_id=shard_id, query=None, k=1)


@pytest.fixture
def pool():
    with ThreadPoolExecutor(max_workers=16) as executor:
        yield executor


def slow_supervisor(pool, policy, calls=None, delay_s=0.2):
    """Every attempt takes ``delay_s`` — long past ``hedge_after_s``, so
    every primary attempt becomes hedge-eligible."""

    def runner(task: ShardTask) -> ShardResult:
        if calls is not None:
            calls.append(task)
        time.sleep(delay_s)
        return ShardResult(
            shard_id=task.shard_id, results=(), stats=SearchStats(), latency_s=delay_s
        )

    return FanoutSupervisor(submit=lambda t: pool.submit(runner, t), policy=policy)


def hedge_policy(budget):
    # hedge_min_samples high enough that the fixed delay (not the
    # latency-tracker quantile) always decides when hedges fire.
    return FaultPolicy(
        max_retries=0,
        hedge_after_s=0.02,
        hedge_min_samples=10_000,
        hedge_budget=budget,
    )


class TestSupervisorBudget:
    def test_zero_budget_denies_every_hedge(self, pool):
        calls = []
        supervisor = slow_supervisor(pool, hedge_policy(0.0), calls)
        outcomes = supervisor.run([[make_task(0), make_task(1)], [make_task(0)]])
        assert sum(o.hedges for o in outcomes) == 0
        assert sum(o.hedges_denied for o in outcomes) == 3
        # Denied means denied: only the three primary attempts ran, and
        # every query still resolved fully.
        assert len(calls) == 3
        for outcome in outcomes:
            assert not outcome.failures

    def test_none_budget_leaves_hedging_unbounded(self, pool):
        calls = []
        supervisor = slow_supervisor(pool, hedge_policy(None), calls)
        outcomes = supervisor.run([[make_task(0), make_task(1)], [make_task(0)]])
        assert sum(o.hedges for o in outcomes) == 3
        assert sum(o.hedges_denied for o in outcomes) == 0
        assert len(calls) == 6  # 3 primaries + 3 hedges

    def test_fractional_budget_caps_live_hedges(self, pool):
        """With budget 0.5 and four slow primaries, hedges launch until
        live hedges would exceed half the live attempts: some fire, at
        least one is denied, and every opportunity is consumed exactly
        once."""
        supervisor = slow_supervisor(pool, hedge_policy(0.5))
        (outcome,) = supervisor.run([[make_task(i) for i in range(4)]])
        assert outcome.hedges + outcome.hedges_denied == 4
        assert outcome.hedges >= 1
        assert outcome.hedges_denied >= 1
        assert not outcome.failures

    def test_denied_hedge_does_not_busy_spin(self, pool):
        """A denied hedge leaves the wait set — the supervisor must not
        spin re-denying it every loop iteration (the counter would race
        upward)."""
        supervisor = slow_supervisor(pool, hedge_policy(0.0), delay_s=0.3)
        (outcome,) = supervisor.run([[make_task(0)]])
        assert outcome.hedges_denied == 1  # exactly once, not thousands

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(hedge_budget=-0.1)


class TestServiceSurface:
    def test_denied_hedges_reach_stats_and_metrics(self, tiny_db):
        """End to end through the sharded service: a zero hedge budget
        over a slow disk denies hedges, and the denials surface in
        ``stats()`` and the Prometheus text."""
        obs = Observability.disabled()
        index = ShardedGATIndex.build(
            tiny_db,
            n_shards=2,
            disk_factory=lambda: SimulatedDisk(read_latency_s=0.002),
        )
        policy = FaultPolicy(
            max_retries=0,
            hedge_after_s=0.001,
            hedge_min_samples=10_000,
            hedge_budget=0.0,
        )
        with ShardedQueryService(
            index,
            executor="thread",
            fault_policy=policy,
            result_cache_size=0,
            obs=obs,
        ) as service:
            generator = QueryWorkloadGenerator(tiny_db, WorkloadConfig(seed=5))
            queries = generator.queries(3)
            for query in queries:
                response = service.search(as_request(query, k=3))
                assert response.complete
            stats = service.stats()
            assert stats.task_hedges == 0
            assert stats.task_hedges_denied >= len(queries)
            snap = obs.metrics_snapshot()
            assert snap["repro_task_hedges_denied_total"] == stats.task_hedges_denied
            assert "repro_task_hedges_denied_total" in obs.prometheus()
            service.reset_stats()
            assert service.stats().task_hedges_denied == 0
