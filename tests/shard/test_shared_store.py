"""The ``store='shared'`` knob: exactness first, lifecycle second.

The shared-memory columnar store must be invisible to every result a
user can observe — rankings byte-identical on every backend, and the
full stats block (pruning counters, disk reads/pages, cache hits)
identical wherever the object path itself is deterministic (the serial
backend; concurrent backends' work counters depend on pruning timing
for *both* stores, see :mod:`repro.shard.service`).

Also here: the refresh-coalescing regression tests — an insert burst
under the process backend must cost exactly one worker-pool re-init,
and a no-op refresh must cost zero.
"""

import dataclasses

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import EngineConfig
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.model.trajectory import ActivityTrajectory
from repro.shard import (
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
)
from repro.storage import shm

K = 5
N_QUERIES = 4


def _make_db(seed=7, n_users=30, name="shared-store-db"):
    config = GeneratorConfig(
        n_users=n_users,
        n_venues=80,
        vocabulary_size=60,
        width_km=8.0,
        height_km=8.0,
        n_hotspots=3,
        checkins_per_user_mean=8.0,
        activities_per_checkin_mean=2.0,
        seed=seed,
    )
    return CheckInGenerator(config).generate(name=name)


@pytest.fixture(scope="module")
def module_db():
    return _make_db()


@pytest.fixture(scope="module")
def queries(module_db):
    gen = QueryWorkloadGenerator(
        module_db,
        WorkloadConfig(n_query_points=3, n_activities_per_point=2, seed=41),
    )
    return gen.queries(N_QUERIES)


def _run(db, queries, store, executor, n_shards=3, n_replicas=0):
    sharded = ShardedGATIndex.build(db, n_shards=n_shards, store=store)
    service_cls = ShardedQueryService
    kwargs = dict(executor=executor, result_cache_size=0)
    if n_replicas:
        service_cls = ReplicatedShardedService
        kwargs["n_replicas"] = n_replicas
    ranked, stats = [], []
    try:
        with service_cls(sharded, **kwargs) as service:
            for i, query in enumerate(queries):
                response = service.search(query, k=K, order_sensitive=(i % 2 == 1))
                ranked.append(
                    [(r.trajectory_id, r.distance) for r in response.results]
                )
                stats.append(dataclasses.asdict(response.stats))
    finally:
        sharded.close()
    return ranked, stats


def test_serial_parity_is_total(module_db, queries):
    """Serial is deterministic for both stores, so *everything* must
    match: rankings, pruning counters, disk accounting, cache numbers."""
    obj = _run(module_db, queries, "object", "serial")
    shr = _run(module_db, queries, "shared", "serial")
    assert shr[0] == obj[0]
    assert shr[1] == obj[1]


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_rankings_identical_on_concurrent_backends(module_db, queries, executor):
    expected = _run(module_db, queries, "object", "serial")[0]
    got = _run(module_db, queries, "shared", executor)[0]
    assert got == expected


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_replicated_service_parity(module_db, queries, executor):
    expected = _run(module_db, queries, "object", "serial")[0]
    got = _run(module_db, queries, "shared", executor, n_replicas=2)[0]
    assert got == expected


def test_engine_config_respected_under_shared_store(module_db, queries):
    """The store knob composes with engine configs (scalar kernel here)."""
    config = EngineConfig(kernel="scalar")
    expected = None
    for store in ("object", "shared"):
        sharded = ShardedGATIndex.build(module_db, n_shards=2, store=store)
        try:
            with ShardedQueryService(
                sharded, engine_config=config, executor="serial"
            ) as service:
                got = [
                    (r.trajectory_id, r.distance)
                    for r in service.search(queries[0], k=K).results
                ]
        finally:
            sharded.close()
        if expected is None:
            expected = got
        else:
            assert got == expected


def test_invalid_store_name_rejected(module_db):
    with pytest.raises(ValueError, match="store"):
        ShardedGATIndex.build(module_db, n_shards=2, store="mmap")


def test_index_close_unlinks_store(module_db):
    sharded = ShardedGATIndex.build(module_db, n_shards=2, store="shared")
    assert shm.active_segments() != []
    sharded.close()
    assert shm.active_segments() == []
    sharded.close()  # idempotent


def test_object_store_has_no_segments(module_db):
    with ShardedGATIndex.build(module_db, n_shards=2, store="object") as sharded:
        assert sharded.store is None
        assert shm.active_segments() == []


def _insert_burst(db, n=5, start=10_000):
    extra = _make_db(seed=991, n_users=n, name="burst")
    return [
        ActivityTrajectory(start + i, tr.points)
        for i, tr in enumerate(extra.trajectories[:n])
    ]


@pytest.mark.parametrize("store", ["object", "shared"])
def test_insert_burst_costs_one_pool_reinit(store, queries):
    """Regression test for refresh amplification: every insert bumps the
    composite version and triggers a ``refresh``, but the worker pool
    must be rebuilt **once** at the next query, not once per insert."""
    db = _make_db(seed=13)
    sharded = ShardedGATIndex.build(db, n_shards=2, store=store)
    try:
        with ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        ) as service:
            executor = service._executor
            service.search(queries[0], k=K)
            assert executor.pool_inits == 1
            for trajectory in _insert_burst(db):
                sharded.insert_trajectory(trajectory)
            service.search(queries[1], k=K)
            assert executor.pool_inits == 2
            # Steady state: further queries with no mutation stay on the
            # same pool.
            service.search(queries[2], k=K)
            assert executor.pool_inits == 2
    finally:
        sharded.close()


def test_noop_refresh_never_reinits(queries):
    """A refresh carrying an equal spec (version probe with no mutation,
    or a shared-store sync with no growth) must not tear the pool down."""
    db = _make_db(seed=17)
    sharded = ShardedGATIndex.build(db, n_shards=2, store="shared")
    try:
        with ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        ) as service:
            executor = service._executor
            service.search(queries[0], k=K)
            assert executor.pool_inits == 1
            for _ in range(3):
                executor.refresh(service._make_spec())
            service.search(queries[1], k=K)
            assert executor.pool_inits == 1
    finally:
        sharded.close()


def test_post_insert_rankings_match_object_store(queries):
    """After an insert burst the attached fleet (base + delta) must rank
    exactly like the object-store fleet over the same grown database."""
    results = {}
    for store in ("object", "shared"):
        db = _make_db(seed=13)
        sharded = ShardedGATIndex.build(db, n_shards=2, store=store)
        try:
            with ShardedQueryService(
                sharded, executor="process", result_cache_size=0
            ) as service:
                for trajectory in _insert_burst(db):
                    sharded.insert_trajectory(trajectory)
                results[store] = [
                    [
                        (r.trajectory_id, r.distance)
                        for r in service.search(q, k=K).results
                    ]
                    for q in queries
                ]
        finally:
            sharded.close()
    assert results["shared"] == results["object"]
