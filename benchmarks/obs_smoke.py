#!/usr/bin/env python
"""CI observability smoke: a faulted, traced, sharded batch end to end.

Builds a small replicated sharded service over disks wearing a
:class:`~repro.faults.FaultInjector` (every shard's first read errors, so
the supervised fan-out must retry), serves a batch with tracing enabled,
then checks the two export surfaces the observability layer promises:

* the JSONL span dump round-trips through ``write_spans_jsonl`` /
  ``read_spans_jsonl`` and passes :func:`repro.obs.validate_spans`
  (unique span ids, parent links that resolve, trace-id consistency, and
  end timestamps that never precede their starts), plus the smoke's own
  stricter shape asserts: every span ended, one ``query`` root per
  served query, every ``shard_task`` span carrying
  shard/replica/attempt/hedge/breaker attributes, and child spans
  starting no earlier than their parents (one process, one clock);
* the Prometheus text snapshot parses strictly
  (:func:`repro.obs.parse_prometheus_text`) and agrees with the registry
  on the served-query count.

Run from the repo root (CI does)::

    PYTHONPATH=src python benchmarks/obs_smoke.py
"""

import sys

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.faults import FaultInjector, FaultRule
from repro.index.gat.index import GATConfig
from repro.obs import (
    Observability,
    parse_prometheus_text,
    read_spans_jsonl,
    validate_spans,
    write_spans_jsonl,
)
from repro.shard import FaultPolicy, ReplicatedShardedService, ShardedGATIndex
from repro.storage.disk import SimulatedDisk

N_QUERIES = 6
K = 5
N_SHARDS = 2
SPANS_PATH = "obs_smoke_spans.jsonl"


def _faulted_disk() -> SimulatedDisk:
    # Exactly the first read on each shard's disk fails: deterministic,
    # so the batch always exercises the retry path.
    injector = FaultInjector(FaultRule(error_rate=1.0, max_errors=1))
    return SimulatedDisk(fault_injector=injector)


def main() -> int:
    config = GeneratorConfig(
        n_users=60,
        n_venues=150,
        vocabulary_size=80,
        width_km=10.0,
        height_km=8.0,
        n_hotspots=4,
        checkins_per_user_mean=8.0,
        activities_per_checkin_mean=2.0,
        seed=99,
    )
    db = CheckInGenerator(config).generate(name="obs-smoke")
    sharded = ShardedGATIndex.build(
        db,
        n_shards=N_SHARDS,
        config=GATConfig(depth=4, memory_levels=3),
        disk_factory=_faulted_disk,
    )
    obs = Observability.enabled()
    workload = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=17)
    )
    with ReplicatedShardedService(
        sharded,
        executor="thread",
        n_replicas=2,
        fault_policy=FaultPolicy(max_retries=2),
        result_cache_size=0,
        obs=obs,
    ) as service:
        responses = service.search_many(workload.queries(N_QUERIES), k=K)
        stats = service.stats()
    assert len(responses) == N_QUERIES
    assert all(r.complete for r in responses), "retries should heal the batch"
    assert stats.task_retries >= 1, "the injected errors must force retries"

    # --- JSONL span dump --------------------------------------------------
    n_written = write_spans_jsonl(SPANS_PATH, obs.tracer.drain())
    records = validate_spans(read_spans_jsonl(SPANS_PATH))
    assert len(records) == n_written and n_written > 0
    by_id = {rec["span_id"]: rec for rec in records}
    roots = [rec for rec in records if rec["parent_id"] is None]
    assert len(roots) == N_QUERIES, f"{len(roots)} roots for {N_QUERIES} queries"
    assert all(rec["name"] == "query" for rec in roots)
    shard_tasks = [rec for rec in records if rec["name"] == "shard_task"]
    assert len(shard_tasks) >= N_QUERIES * N_SHARDS + stats.task_retries
    for rec in shard_tasks:
        for attr in ("shard", "replica", "attempt", "hedge", "breaker"):
            assert attr in rec["attrs"], f"shard_task missing {attr}: {rec}"
    retried = [rec for rec in shard_tasks if rec["attrs"]["attempt"] > 0]
    assert retried, "no retry attempt shows in the trace"
    fault_events = [
        ev
        for rec in records
        for ev in rec["events"]
        if ev["name"].startswith("fault_")
    ]
    assert fault_events, "injected faults must attach events to spans"
    for rec in records:
        assert rec["end_s"] is not None, f"span left open: {rec['span_id']}"
        parent = by_id.get(rec["parent_id"])
        if parent is not None:
            # One process, one clock: children start after their parents.
            assert rec["start_s"] >= parent["start_s"] - 1e-6

    # --- Prometheus snapshot ----------------------------------------------
    text = obs.prometheus()
    samples = parse_prometheus_text(text)
    assert samples["repro_queries_total"] == float(N_QUERIES)
    assert samples["repro_task_retries_total"] == float(stats.task_retries)
    assert samples["repro_query_latency_seconds_count"] == float(N_QUERIES)

    print(
        f"obs smoke ok: {len(records)} spans ({len(shard_tasks)} shard tasks, "
        f"{len(retried)} retried, {len(fault_events)} fault events), "
        f"{len(samples)} prometheus samples, "
        f"{stats.task_retries} retries healed {N_QUERIES} queries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
