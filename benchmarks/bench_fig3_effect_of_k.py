"""Figure 3 — effect of k on ATSQ/OATSQ running time (panels a-d).

Prints the four series tables (ATSQ/OATSQ x LA/NY) over k in {5..25} and
benchmarks each method at the default k = 9.

Paper shape to compare against: GAT fastest everywhere; IL flat in k (it
scores the same candidate set regardless); RT/IRT/GAT increase with k.
"""

import pytest

from repro.bench.experiments import K_VALUES, DEFAULT_K, effect_of_k
from repro.bench.reporting import format_series_table


@pytest.mark.benchmark(group="fig3-full-sweep")
def test_figure3_sweep(benchmark, la_harness, ny_harness, la_db, ny_db, scale):
    """Regenerates all four Figure 3 panels; the benchmark time is the cost
    of the whole sweep."""
    tables = []

    def run():
        tables.clear()
        for label, db, harness in (("LA", la_db, la_harness), ("NY", ny_db, ny_harness)):
            for order_sensitive, qtype in ((False, "ATSQ"), (True, "OATSQ")):
                results = effect_of_k(
                    db, scale, order_sensitive=order_sensitive, harness=harness
                )
                tables.append(
                    format_series_table(
                        f"Figure 3 — {qtype} on {label}, varying k", results
                    )
                )

    benchmark.pedantic(run, rounds=1, iterations=1)
    for table in tables:
        print(table)


@pytest.mark.parametrize("method", ["IL", "RT", "IRT", "GAT"])
@pytest.mark.benchmark(group="fig3-atsq-la-default-k")
def test_atsq_default_k(benchmark, la_harness, la_queries, method):
    searcher = la_harness.searchers[method]

    def run():
        for q in la_queries:
            searcher.atsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.parametrize("method", ["IL", "RT", "IRT", "GAT"])
@pytest.mark.benchmark(group="fig3-oatsq-la-default-k")
def test_oatsq_default_k(benchmark, la_harness, la_queries, method):
    searcher = la_harness.searchers[method]

    def run():
        for q in la_queries:
            searcher.oatsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=1, iterations=1)
