"""Service throughput — batched QueryService vs a sequential query loop.

Not a paper figure: this benchmarks the serving layer the reproduction
grows beyond the paper.  Two engines are built over the *same* dataset on
separate simulated disks carrying a realistic per-read latency (the paper
stores APL and the low HICL levels on hard disk; a zero-latency simulation
would leave nothing for concurrency to overlap).  Both start cold:

* **sequential** — one `engine.atsq/oatsq` loop, cache-less (the seed
  engine's per-query behaviour: every APL fetch and disk-resident cell
  list is a counted, latency-bearing read);
* **batched** — a `QueryService` fan-out over one shared engine with the
  warm LRU caches on.

The speedup therefore measures what the service layer actually ships:
thread-pooled latency overlap *plus* cross-query cache reuse.  The
acceptance bar is >1.5× at 8 workers.
"""

import pytest

from repro.core.engine import GATSearchEngine
from repro.index.gat.index import GATIndex
from repro.service import QueryRequest, QueryService
from repro.storage.disk import SimulatedDisk

from conftest import bench_gat_config

#: Per-read latency of the simulated disk.  1 ms is a mid-range random
#: 4K page read on spinning metal (the paper's setting); keeping I/O
#: dominant also makes the speedup assertion robust on slow CI runners,
#: where pure-Python compute (which the GIL serialises) stretches but
#: sleeps don't.
READ_LATENCY_S = 1e-3
N_QUERIES = 48
K = 9
WORKERS = 8


def _requests(queries):
    return [
        QueryRequest(q, k=K, order_sensitive=(i % 2 == 1))
        for i, q in enumerate(queries)
    ]


@pytest.fixture(scope="module")
def workload(la_queries):
    queries = (la_queries * ((N_QUERIES // len(la_queries)) + 1))[:N_QUERIES]
    return _requests(queries)


def _build_engine(db, apl_cache_size):
    disk = SimulatedDisk(read_latency_s=READ_LATENCY_S)
    index = GATIndex.build(db, bench_gat_config(), disk=disk)
    return GATSearchEngine(index, apl_cache_size=apl_cache_size)


@pytest.mark.benchmark(group="service-throughput")
def test_batched_vs_sequential_throughput(benchmark, la_db, workload):
    import time

    seq_engine = _build_engine(la_db, apl_cache_size=0)
    svc_engine = _build_engine(la_db, apl_cache_size=2048)
    service = QueryService(svc_engine, max_workers=WORKERS)
    report = {}

    def run():
        t0 = time.perf_counter()
        for req in workload:
            # Cold caches per query = the seed engine's behaviour (it
            # cleared the HICL cache at the start of every search).
            seq_engine.index.hicl.clear_cache()
            run_one = seq_engine.oatsq if req.order_sensitive else seq_engine.atsq
            run_one(req.query, req.k)
        report["seq_s"] = time.perf_counter() - t0

        service.reset_stats()
        t0 = time.perf_counter()
        responses = service.search_many(workload)
        report["batch_s"] = time.perf_counter() - t0
        report["responses"] = responses
        report["stats"] = service.stats()

    benchmark.pedantic(run, rounds=1, iterations=1)

    seq_s, batch_s = report["seq_s"], report["batch_s"]
    stats = report["stats"]
    seq_qps = N_QUERIES / seq_s
    speedup = seq_s / batch_s
    print(f"\nservice throughput ({N_QUERIES} mixed ATSQ/OATSQ, k={K}, "
          f"{WORKERS} workers, {READ_LATENCY_S * 1e6:.0f} µs/read):")
    print(f"  sequential loop : {seq_s:.2f} s  ({seq_qps:.1f} QPS)")
    print(f"  QueryService    : {batch_s:.2f} s  ({stats.qps:.1f} QPS, "
          f"p50 {stats.latency_p50_s * 1000:.1f} ms, "
          f"p95 {stats.latency_p95_s * 1000:.1f} ms)")
    print(f"  caches          : HICL {stats.hicl_cache_hit_rate:.1%}, "
          f"APL {stats.apl_cache_hit_rate:.1%} hit rate")
    print(f"  speedup         : {speedup:.2f}x")
    assert len(report["responses"]) == N_QUERIES
    assert speedup > 1.5


@pytest.mark.benchmark(group="service-throughput-workers")
@pytest.mark.parametrize("workers", [1, 4, 8])
def test_service_worker_scaling(benchmark, la_db, workload, workers):
    engine = _build_engine(la_db, apl_cache_size=2048)
    service = QueryService(engine, max_workers=workers)

    def run():
        service.search_many(workload)

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = service.stats()
    print(f"\n{workers} workers: {stats.qps:.1f} QPS, "
          f"p95 {stats.latency_p95_s * 1000:.1f} ms")
