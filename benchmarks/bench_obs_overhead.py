"""Observability overhead — instrumented-but-disabled must be ~free.

The unified observability layer promises pay-for-what-you-use: a service
built with ``Observability.disabled()`` (metrics registry live, tracer a
:class:`~repro.obs.trace.NullTracer`) must serve within 5% of the same
service built with no ``obs`` at all.  This benchmark measures exactly
that contract on the concurrent :class:`QueryService` hot path:

* **alternating reps** — baseline and instrumented runs interleave
  (``A B A B ...``) so thermal drift or a noisy neighbour biases both
  arms equally;
* **best-of-N** — the minimum wall time per arm is the least-noise
  estimate of the true cost (the standard microbenchmark reduction);
* **cold result cache** — ``result_cache_size=0``, otherwise the second
  rep would serve memoized tuples and measure nothing.

The throughput ratio (disabled over baseline) is asserted ``>= 0.95``
here and emitted as ``BENCH_obs.json`` so
``check_bench_regressions.py`` gates it against the committed baseline.
The emitted row also embeds the registry snapshot — the bench-integration
path every ``BENCH_*.json`` can now use.
"""

import json
import os
import time

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import GATSearchEngine
from repro.index.gat.index import GATIndex
from repro.obs import Observability
from repro.service import QueryService

from conftest import bench_gat_config, bench_scale

N_QUERIES = 30
K = 8
REPS = 4
MAX_WORKERS = 8

JSON_PATH = os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs.json")


@pytest.fixture(scope="module")
def gat_index(la_db):
    return GATIndex.build(la_db, bench_gat_config())


@pytest.mark.benchmark(group="observability")
def test_disabled_observability_overhead(benchmark, la_db, gat_index):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    queries = gen.queries(N_QUERIES)
    report = {}

    def serve_once(obs):
        """One timed batch through a fresh service (warm-up lap first)."""
        service = QueryService(
            GATSearchEngine(gat_index),
            max_workers=MAX_WORKERS,
            result_cache_size=0,
            obs=obs,
        )
        try:
            service.search_many(queries, k=K)  # warm caches + pool
            t0 = time.perf_counter()
            responses = service.search_many(queries, k=K)
            wall = time.perf_counter() - t0
        finally:
            service.close()
        assert len(responses) == N_QUERIES
        return wall

    def run():
        baseline_times = []
        disabled_times = []
        obs = Observability.disabled()
        for _ in range(REPS):
            baseline_times.append(serve_once(None))
            disabled_times.append(serve_once(obs))
        best_baseline = min(baseline_times)
        best_disabled = min(disabled_times)
        # Throughput ratio: disabled-instrumentation over uninstrumented.
        ratio = best_baseline / best_disabled
        report.update(
            {
                "n_queries": N_QUERIES,
                "k": K,
                "reps": REPS,
                "max_workers": MAX_WORKERS,
                "baseline_best_s": round(best_baseline, 6),
                "disabled_best_s": round(best_disabled, 6),
                "baseline_qps": round(N_QUERIES / best_baseline, 2),
                "disabled_qps": round(N_QUERIES / best_disabled, 2),
                "disabled_over_baseline": round(ratio, 4),
                # The embedding path: a registry snapshot in a bench row.
                "metrics": obs.metrics_snapshot(),
            }
        )
        assert ratio >= 0.95, (
            f"disabled observability costs more than 5% throughput "
            f"(ratio {ratio:.3f}: baseline {best_baseline:.4f}s vs "
            f"disabled {best_disabled:.4f}s)"
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"\nobservability overhead ({N_QUERIES} queries × {REPS} reps, "
        f"best-of): baseline {report['baseline_qps']} QPS, "
        f"disabled {report['disabled_qps']} QPS, "
        f"ratio {report['disabled_over_baseline']:.3f}"
    )
