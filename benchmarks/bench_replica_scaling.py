"""Replica serving — batched throughput at 2 replicas/shard, emitting
BENCH_replicas.json.

Not a paper figure: this measures the replica tier, the read-scaling axis
beyond shards (ROADMAP "Replica routing").  The cost model is the paper's
cold-I/O protocol (every surviving candidate pays a counted APL read on
its shard's simulated disk) with one crucial addition: each disk serves
**one latency-bearing read at a time** (``concurrent_reads=1`` — a
spinning-disk arm).  Under that model the unreplicated fleet is bound by
one arm per shard no matter how many worker threads fan out; a second
replica of every shard is a second physical copy on a second arm, so
batched throughput should roughly double.  That is precisely the regime
replica routing targets — the contention-free disk of
``bench_sharded_scaling.py`` would (correctly) show no replica win at
all, because a latency-only disk already overlaps infinitely.

One workload of mixed ATSQ/OATSQ queries is served by the baseline
:class:`ShardedQueryService` (one copy per shard) and by a
:class:`ReplicatedShardedService` at 2 replicas/shard under each router
strategy (round-robin / least-in-flight / power-of-two), all on the
cold-I/O **thread** backend.  Every HICL cache is cleared before every
timed run so no row inherits another's warm cache.  Rankings are asserted
byte-identical across all rows, and the acceptance bar is ≥1.3× batched
throughput for the deterministic routers at 2 replicas/shard (measured
~1.8-2×; the margin absorbs the replicas' own cold-HICL reads and
scheduling noise).

``BENCH_replicas.json`` rows: replica count, router, wall seconds, QPS,
speedup vs the 1-copy baseline, and disk reads; gated by
``check_bench_regressions.py`` against the committed baseline.
"""

import json
import time

import pytest

from repro.bench.workloads import (
    QueryWorkloadGenerator,
    WorkloadConfig,
    mixed_order_requests,
)
from repro.core.engine import EngineConfig
from repro.shard import (
    REPLICA_ROUTERS,
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
)
from repro.storage.disk import SimulatedDisk

from conftest import bench_gat_config, bench_scale

#: HDD-class random read, scaled down so the serialized-arm model keeps
#: CI wall time in seconds (the *ratio* between rows is the metric, and
#: every row pays the same per-read price).
READ_LATENCY_S = 2e-3
#: One latency-bearing read at a time per disk: the single arm that makes
#: "one copy of each shard" a real throughput ceiling.
CONCURRENT_READS = 1
N_QUERIES = 16
K = 8
N_SHARDS = 2
N_REPLICAS = 2

#: The figure harness's cold protocol: every surviving candidate is one
#: counted, latency-bearing APL read.
ENGINE_CONFIG = EngineConfig(apl_cache_size=0)

#: The stochastic router is reported, not asserted — its dispatch
#: sequence is seeded but its interleaving under threads is not.
ASSERTED_ROUTERS = ("round-robin", "least-in-flight")

BENCH_JSON = "BENCH_replicas.json"


@pytest.fixture(scope="module")
def workload(la_db):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    return mixed_order_requests(gen.queries(N_QUERIES), K)


def _disk_factory():
    return SimulatedDisk(
        read_latency_s=READ_LATENCY_S, concurrent_reads=CONCURRENT_READS
    )


def _run(service, indexes, workload):
    # Uniformly cold HICL caches: replicas must not be penalised for the
    # primary's warmth (or vice versa).
    for index in indexes:
        index.hicl.clear_cache()
    t0 = time.perf_counter()
    responses = service.search_many(workload)
    wall = time.perf_counter() - t0
    return wall, responses


def _rankings(responses):
    return [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]


@pytest.mark.benchmark(group="replica-scaling")
def test_replica_scaling_speedup_and_parity(benchmark, la_db, workload):
    report = {}

    def run():
        sharded = ShardedGATIndex.build(
            la_db,
            n_shards=N_SHARDS,
            config=bench_gat_config(),
            disk_factory=_disk_factory,
        )
        rows = []
        service = ShardedQueryService(
            sharded, engine_config=ENGINE_CONFIG, executor="thread",
            result_cache_size=0,
        )
        try:
            wall, responses = _run(service, sharded.shards, workload)
        finally:
            service.close()
        baseline = {"wall": wall, "rankings": _rankings(responses)}
        rows.append(
            {
                "replicas": 1,
                "router": "none",
                "executor": "thread",
                "queries": len(responses),
                "wall_s": round(wall, 4),
                "qps": round(len(responses) / wall, 2),
                "speedup_vs_1replica": 1.0,
                "disk_reads": sum(r.stats.disk_reads for r in responses),
            }
        )
        for router in REPLICA_ROUTERS:
            service = ReplicatedShardedService(
                sharded,
                engine_config=ENGINE_CONFIG,
                executor="thread",
                n_replicas=N_REPLICAS,
                replica_router=router,
                router_seed=20130408,
                result_cache_size=0,
            )
            try:
                replica_indexes = [
                    shard for bank in service._replica_indexes for shard in bank
                ]
                wall, responses = _run(
                    service, list(sharded.shards) + replica_indexes, workload
                )
            finally:
                service.close()
            # Exactness: whichever replicas served it, the ranking is the
            # unreplicated one, byte for byte.
            assert _rankings(responses) == baseline["rankings"], router
            rows.append(
                {
                    "replicas": N_REPLICAS,
                    "router": router,
                    "executor": "thread",
                    "queries": len(responses),
                    "wall_s": round(wall, 4),
                    "qps": round(len(responses) / wall, 2),
                    "speedup_vs_1replica": round(baseline["wall"] / wall, 3),
                    "disk_reads": sum(r.stats.disk_reads for r in responses),
                }
            )
        report["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = report["rows"]
    with open(BENCH_JSON, "w") as fh:
        json.dump(
            {
                "n_queries": N_QUERIES,
                "k": K,
                "n_shards": N_SHARDS,
                "read_latency_s": READ_LATENCY_S,
                "concurrent_reads": CONCURRENT_READS,
                "rows": rows,
            },
            fh,
            indent=2,
        )
    print(f"\nreplica scaling ({N_QUERIES} mixed ATSQ/OATSQ, k={K}, "
          f"{N_SHARDS} shards, cold APL, {READ_LATENCY_S * 1e3:.0f} ms "
          f"serialized reads, identical rankings asserted):")
    for row in rows:
        print(f"  {row['replicas']} replica(s) ({row['router']:15s}): "
              f"{row['wall_s']:6.2f} s  {row['qps']:7.1f} QPS  "
              f"{row['speedup_vs_1replica']:.2f}x vs 1 replica  "
              f"({row['disk_reads']} reads)")
    by_router = {r["router"]: r for r in rows}
    for router in ASSERTED_ROUTERS:
        speedup = by_router[router]["speedup_vs_1replica"]
        assert speedup >= 1.3, (
            f"{router}: 2-replica speedup {speedup:.2f}x < 1.3x"
        )
