"""Figure 5 — effect of activities per query location |q.Φ| (panels a-d).

Paper shape: every activity-aware method (IL, IRT, GAT) gets *faster* as
|q.Φ| grows (more selective candidates); RT is insensitive at retrieval
(activity-blind) and only mildly affected through validation.
"""

import pytest

from repro.bench.experiments import DEFAULT_K, effect_of_activities
from repro.bench.reporting import format_series_table
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig


@pytest.mark.benchmark(group="fig5-full-sweep")
def test_figure5_sweep(benchmark, la_harness, ny_harness, la_db, ny_db, scale):
    tables = []

    def run():
        tables.clear()
        _collect(tables, la_harness, ny_harness, la_db, ny_db, scale)

    benchmark.pedantic(run, rounds=1, iterations=1)
    for table in tables:
        print(table)


def _collect(tables, la_harness, ny_harness, la_db, ny_db, scale):
    for label, db, harness in (("LA", la_db, la_harness), ("NY", ny_db, ny_harness)):
        for order_sensitive, qtype in ((False, "ATSQ"), (True, "OATSQ")):
            results = effect_of_activities(
                db, scale, order_sensitive=order_sensitive, harness=harness
            )
            tables.append(
                format_series_table(
                    f"Figure 5 — {qtype} on {label}, varying |q.phi|", results
                )
            )
            tables.append(
                format_series_table(
                    f"Figure 5 (candidates/query) — {qtype} on {label}",
                    results,
                    value="candidates",
                    unit="cands",
                )
            )


@pytest.mark.parametrize("na", [1, 3, 5])
@pytest.mark.benchmark(group="fig5-il-atsq-la")
def test_il_atsq_by_activities(benchmark, la_harness, la_db, scale, na):
    gen = QueryWorkloadGenerator(
        la_db, WorkloadConfig(n_activities_per_point=na, seed=scale.seed)
    )
    queries = gen.queries(scale.n_queries, n_activities_per_point=na)
    il = la_harness.searchers["IL"]

    def run():
        for q in queries:
            il.atsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=2, iterations=1)
