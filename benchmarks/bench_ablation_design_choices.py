"""Ablations of the GAT design choices DESIGN.md calls out.

Not a paper figure — this quantifies the individual contributions the
paper argues for qualitatively:

* **TAS sketch** (Section V-C): candidates rejected in memory before any
  disk access.  Ablation: ``use_tas=False`` fetches the APL for every
  retrieved candidate.
* **Tight lower bound** (Section V-B / Algorithm 2): the virtual-trajectory
  bound vs the queue-top bound the paper rejects as "too loose".
* **λ batch size** (Section V-A): candidates retrieved per round.
* **Dmom compression + Dmm gating** (Section VI-C optimisations).
"""

import time

import pytest

from repro.bench.experiments import DEFAULT_K
from repro.bench.reporting import _render
from repro.core.engine import GATSearchEngine
from repro.core.pipeline import APLFilter, MIBFilter, TASFilter
from repro.index.gat.index import GATIndex

from conftest import bench_gat_config


@pytest.fixture(scope="module")
def gat_index(la_db):
    return GATIndex.build(la_db, bench_gat_config())


def _run_all(engine, queries, order_sensitive=False):
    # Cold caches: the shared HICL LRU (and the engine APL cache, which
    # callers disable) would otherwise let the first variant absorb all
    # the cold disk reads and warm the cache for every later one, making
    # the per-variant I/O column order-dependent.
    engine.index.hicl.clear_cache()
    t0 = time.perf_counter()
    retrieved = 0
    disk_reads = 0
    for q in queries:
        if order_sensitive:
            engine.oatsq(q, DEFAULT_K)
        else:
            engine.atsq(q, DEFAULT_K)
        retrieved += engine.stats.candidates_retrieved
        disk_reads += engine.stats.disk_reads
    elapsed = (time.perf_counter() - t0) / len(queries)
    return elapsed, retrieved // len(queries), disk_reads // len(queries)


@pytest.mark.benchmark(group="ablation-tas-lb")
def test_print_tas_and_lower_bound_ablation(benchmark, gat_index, la_queries):
    rows = []

    def run():
        rows.clear()
        _sweep_variants(rows, gat_index, la_queries)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        _render(
            "Ablation — TAS sketch and tight lower bound (ATSQ, LA)",
            ["variant", "s/query", "cands/query", "disk reads/query"],
            rows,
        )
    )


def _sweep_variants(rows, gat_index, la_queries):
    for label, kwargs in (
        ("full GAT (paper design)", {}),
        ("no TAS sketch", {"use_tas": False}),
        ("loose lower bound", {"use_tight_lower_bound": False}),
        ("neither", {"use_tas": False, "use_tight_lower_bound": False}),
    ):
        engine = GATSearchEngine(gat_index, apl_cache_size=0, **kwargs)
        secs, cands, reads = _run_all(engine, la_queries)
        rows.append([label, f"{secs:.4f}", str(cands), str(reads)])


@pytest.mark.benchmark(group="ablation-tas-disk")
def test_tas_reduces_disk_reads(benchmark, gat_index, la_queries):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_tas = GATSearchEngine(gat_index, use_tas=True, apl_cache_size=0)
    without = GATSearchEngine(gat_index, use_tas=False, apl_cache_size=0)
    _s, _c, reads_with = _run_all(with_tas, la_queries)
    _s, _c, reads_without = _run_all(without, la_queries)
    assert reads_with <= reads_without


@pytest.mark.benchmark(group="ablation-filter-chain")
def test_print_filter_chain_ablation(benchmark, gat_index, la_queries):
    """Validation-chain compositions for OATSQ, swept as *filter chains*
    (the pipeline's composition point) rather than engine flags: the
    paper's TAS → APL → MIB order, each filter dropped, and the
    APL-before-TAS reordering that pays a disk read for every retrieved
    candidate.  Results are identical across chains (the DP is the final
    arbiter); only the work profile moves."""
    rows = []

    def run():
        rows.clear()
        _filter_chain_sweep(rows, gat_index, la_queries)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        _render(
            "Ablation — validation filter chains (OATSQ, LA)",
            ["chain", "s/query", "pruned t/a/m", "scored/query", "disk reads/query"],
            rows,
        )
    )


def _filter_chain_sweep(rows, gat_index, la_queries):
    engine = GATSearchEngine(gat_index, apl_cache_size=0)
    tas = TASFilter(gat_index.sketches)
    apl = APLFilter(gat_index.apl, None)
    mib = MIBFilter(gat_index.db)
    chains = (
        ("TAS->APL->MIB (paper)", [tas, apl, mib]),
        ("APL->MIB (no TAS)", [apl, mib]),
        ("TAS->APL (no MIB)", [tas, apl]),
        ("APL->TAS->MIB (reordered)", [apl, tas, mib]),
    )
    baseline = None
    for label, chain in chains:
        engine.index.hicl.clear_cache()
        t0 = time.perf_counter()
        pruned = [0, 0, 0]
        scored = 0
        reads = 0
        answers = []
        for q in la_queries:
            ctx = engine.execute(q, DEFAULT_K, order_sensitive=True, filters=list(chain))
            pruned[0] += ctx.stats.tas_pruned
            pruned[1] += ctx.stats.apl_pruned
            pruned[2] += ctx.stats.mib_pruned
            scored += ctx.stats.validated
            reads += ctx.stats.disk_reads
            answers.append([(r.trajectory_id, r.distance) for r in ctx.ranked])
        elapsed = (time.perf_counter() - t0) / len(la_queries)
        if baseline is None:
            baseline = answers
        else:
            assert answers == baseline, f"chain {label!r} changed the top-k"
        n = len(la_queries)
        rows.append(
            [
                label,
                f"{elapsed:.4f}",
                "/".join(str(p // n) for p in pruned),
                str(scored // n),
                str(reads // n),
            ]
        )


@pytest.mark.benchmark(group="ablation-lambda-sweep")
def test_print_lambda_sweep(benchmark, gat_index, la_queries):
    rows = []

    def run():
        rows.clear()
        _lambda_sweep(rows, gat_index, la_queries)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        _render(
            "Ablation — retrieval batch size λ (ATSQ, LA)",
            ["λ", "s/query", "cands/query"],
            rows,
        )
    )


def _lambda_sweep(rows, gat_index, la_queries):
    for lam in (8, 32, 128, 512):
        engine = GATSearchEngine(gat_index, retrieval_batch=lam, apl_cache_size=0)
        secs, cands, _reads = _run_all(engine, la_queries)
        rows.append([str(lam), f"{secs:.4f}", str(cands)])


@pytest.mark.benchmark(group="ablation-dmom")
def test_print_dmom_optimisation_ablation(benchmark, la_db, la_queries):
    """Dmom with/without trajectory compression, on the scored candidates
    of a real query batch."""
    from repro.core.evaluator import MatchEvaluator
    from repro.core.match import INFINITY
    from repro.core.order_match import minimum_order_match_distance
    from repro.index.inverted import InvertedIndex

    ev = MatchEvaluator()
    inv = InvertedIndex.build(la_db)
    rows = []

    def run():
        rows.clear()
        _dmom_sweep(rows, la_db, la_queries, ev, inv)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        _render(
            "Ablation — Dmom trajectory compression",
            ["variant", "total s", "candidates scored"],
            rows,
        )
    )


def _dmom_sweep(rows, la_db, la_queries, ev, inv):
    from repro.core.order_match import minimum_order_match_distance

    for label, compress in (("compressed DP", True), ("full-length DP", False)):
        t0 = time.perf_counter()
        scored = 0
        for q in la_queries:
            candidates = sorted(inv.trajectories_with_all(q.all_activities))[:120]
            for tid in candidates:
                minimum_order_match_distance(
                    q, la_db.get(tid), ev.metric, compress=compress
                )
                scored += 1
        rows.append([label, f"{time.perf_counter() - t0:.2f}", str(scored)])


@pytest.mark.benchmark(group="ablation-lambda")
@pytest.mark.parametrize("lam", [8, 128])
def test_lambda_benchmark(benchmark, gat_index, la_queries, lam):
    engine = GATSearchEngine(gat_index, retrieval_batch=lam, apl_cache_size=0)

    def run():
        engine.index.hicl.clear_cache()  # cold caches for both params
        for q in la_queries:
            engine.atsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=2, iterations=1)
