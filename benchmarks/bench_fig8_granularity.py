"""Figure 8 — effect of the grid partition granularity (panels a, b).

For each depth d (the paper plots partitions-per-side 32/64/128/256, i.e.
d = 5..8), builds GAT, times ATSQ and OATSQ batches, and reports the
in-memory index size — the three series of the paper's combined plot.

Paper shape: finer grids help query time with diminishing returns beyond
64 x 64 (deeper hierarchies cost more queue operations, offsetting the
tighter lower bound); memory grows with the cell count, modestly beyond
the disk-resident split level.
"""

import pytest

from repro.bench.experiments import effect_of_granularity
from repro.bench.reporting import _render

#: Depths swept.  Our benchmark city is ~1/5 the paper's extent, so these
#: cell sizes bracket the paper's 32x32 .. 256x256 sweep (EXPERIMENTS.md).
DEPTHS = (4, 5, 6, 7)


@pytest.mark.benchmark(group="fig8-full-sweep")
def test_figure8_sweep(benchmark, la_db, ny_db, scale):
    out = {}

    def run():
        out.clear()
        for label, db in (("LA", la_db), ("NY", ny_db)):
            out[label] = effect_of_granularity(db, scale, depths=DEPTHS)

    benchmark.pedantic(run, rounds=1, iterations=1)
    for label, rows in out.items():
        table_rows = [
            [
                f"{r['partitions']}x{r['partitions']}",
                f"{r['atsq_avg_s']:.4f}",
                f"{r['oatsq_avg_s']:.4f}",
                f"{r['memory_bytes'] / 1e6:.2f}",
            ]
            for r in rows
        ]
        print(
            _render(
                f"Figure 8 — partition granularity on {label}",
                ["partitions", "ATSQ (s/query)", "OATSQ (s/query)", "memory (MB)"],
                table_rows,
            )
        )
        memories = [r["memory_bytes"] for r in rows]
        assert memories == sorted(memories)  # memory grows with granularity


@pytest.mark.parametrize("depth", [4, 6])
@pytest.mark.benchmark(group="fig8-gat-build")
def test_gat_build_at_depth(benchmark, la_db, depth):
    from repro.index.gat.index import GATConfig, GATIndex

    config = GATConfig(depth=depth, memory_levels=min(6, depth))
    benchmark.pedantic(lambda: GATIndex.build(la_db, config), rounds=2, iterations=1)
