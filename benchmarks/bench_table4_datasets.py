"""Table IV — dataset statistics.

Regenerates the paper's Table IV for the synthetic LA/NY datasets at the
benchmark scale, and benchmarks dataset generation + index construction.
Compare the printed ratios (NY/LA trajectories, activities per trajectory)
with the paper's: 49,027/31,557 = 1.55 and ~100 vs ~42 occurrences per
trajectory.
"""

import pytest

from repro.bench.reporting import format_stat_table
from repro.index.gat.index import GATIndex

from conftest import bench_gat_config


@pytest.mark.benchmark(group="table4-statistics")
def test_print_table4(benchmark, la_db, ny_db):
    stats_by_name = {}

    def run():
        for name, db in (("LA", la_db), ("NY", ny_db)):
            stats_by_name[name] = db.statistics()

    benchmark.pedantic(run, rounds=1, iterations=1)
    for name, stats in stats_by_name.items():
        print(format_stat_table(f"Table IV ({name}, scale-adjusted)", stats.as_rows()))
    la, ny = la_db.statistics(), ny_db.statistics()
    ratio = ny.n_trajectories / la.n_trajectories
    print(f"NY/LA trajectory ratio: {ratio:.2f} (paper: 1.55)")
    la_per = la.n_activities / la.n_trajectories
    ny_per = ny.n_activities / ny.n_trajectories
    print(f"activities per trajectory: LA {la_per:.1f} vs NY {ny_per:.1f} (paper: ~100 vs ~42)")
    assert ratio > 1.2  # NY bigger, as in the paper
    assert la_per > ny_per  # LA denser in activities, as in the paper


@pytest.mark.benchmark(group="table4-build")
def test_gat_build_la(benchmark, la_db):
    benchmark.pedantic(
        lambda: GATIndex.build(la_db, bench_gat_config()), rounds=2, iterations=1
    )


@pytest.mark.benchmark(group="table4-build")
def test_gat_build_ny(benchmark, ny_db):
    benchmark.pedantic(
        lambda: GATIndex.build(ny_db, bench_gat_config()), rounds=2, iterations=1
    )
