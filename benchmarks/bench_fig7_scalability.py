"""Figure 7 — scalability in the dataset size |D| (panels a, b).

The paper samples the NY dataset from 10K to ~50K trajectories; we sample
our NY-like dataset over a proportional range.  Paper shape: every method
grows ~linearly, GAT with the smallest slope — equivalently, the GAT:IL
ratio improves as |D| grows (the neighbourhood a query inspects is a
shrinking fraction of the database).
"""

import pytest

from repro.bench.experiments import effect_of_dataset_size
from repro.bench.reporting import format_series_table


def _sizes(db):
    n = len(db)
    # Five sizes from 20% to 100%, mirroring the paper's 10K..50K ladder.
    return [max(50, int(n * f)) for f in (0.2, 0.4, 0.6, 0.8, 1.0)]


@pytest.mark.benchmark(group="fig7-full-sweep")
def test_figure7_sweep(benchmark, ny_db, scale):
    tables = []

    def run():
        tables.clear()
        for order_sensitive, qtype in ((False, "ATSQ"), (True, "OATSQ")):
            results = effect_of_dataset_size(
                ny_db, scale, sizes=_sizes(ny_db), order_sensitive=order_sensitive
            )
            tables.append(
                format_series_table(
                    f"Figure 7 — {qtype} on NY samples, varying |D|", results
                )
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    for table in tables:
        print(table)


@pytest.mark.benchmark(group="fig7-gat-atsq-scaling")
@pytest.mark.parametrize("fraction", [0.25, 1.0])
def test_gat_atsq_at_size(benchmark, ny_db, scale, fraction):
    import random

    from repro.bench.experiments import DEFAULT_K
    from repro.bench.harness import ExperimentHarness
    from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig

    from conftest import bench_gat_config

    db = ny_db.sample(max(50, int(len(ny_db) * fraction)), random.Random(scale.seed))
    harness = ExperimentHarness(db, gat_config=bench_gat_config(), methods=("GAT",))
    gen = QueryWorkloadGenerator(db, WorkloadConfig(seed=scale.seed))
    queries = gen.queries(scale.n_queries)
    gat = harness.searchers["GAT"]

    def run():
        for q in queries:
            gat.atsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=2, iterations=1)
