"""Figure 4 — effect of the number of query locations |Q| (panels a-d).

Paper shape: RT/IRT/GAT cost grows with |Q| (more spatial streams to
expand); IL *decreases* for ATSQ (more required activities -> fewer
candidates) but increases for OATSQ (the DP's cost in |Q| dominates).
"""

import pytest

from repro.bench.experiments import DEFAULT_K, effect_of_query_points
from repro.bench.reporting import format_series_table
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig


@pytest.mark.benchmark(group="fig4-full-sweep")
def test_figure4_sweep(benchmark, la_harness, ny_harness, la_db, ny_db, scale):
    tables = []

    def run():
        tables.clear()
        for label, db, harness in (("LA", la_db, la_harness), ("NY", ny_db, ny_harness)):
            for order_sensitive, qtype in ((False, "ATSQ"), (True, "OATSQ")):
                results = effect_of_query_points(
                    db, scale, order_sensitive=order_sensitive, harness=harness
                )
                tables.append(
                    format_series_table(
                        f"Figure 4 — {qtype} on {label}, varying |Q|", results
                    )
                )

    benchmark.pedantic(run, rounds=1, iterations=1)
    for table in tables:
        print(table)


@pytest.mark.parametrize("nq", [2, 4, 6])
@pytest.mark.benchmark(group="fig4-gat-atsq-la")
def test_gat_atsq_by_query_points(benchmark, la_harness, la_db, scale, nq):
    gen = QueryWorkloadGenerator(
        la_db, WorkloadConfig(n_query_points=nq, seed=scale.seed)
    )
    queries = gen.queries(scale.n_queries, n_query_points=nq)
    gat = la_harness.searchers["GAT"]

    def run():
        for q in queries:
            gat.atsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=2, iterations=1)
