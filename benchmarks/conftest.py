"""Shared benchmark fixtures.

Every paper figure gets one module under ``benchmarks/``; each prints the
figure's full series (the textual equivalent of the paper's plot) once per
session and registers pytest-benchmark timings for the default setting.

Scaling: datasets are generated at ``REPRO_BENCH_SCALE`` (default 0.04,
i.e. ~1.3K LA-like / ~2K NY-like trajectories — paper-shaped but laptop
sized) with ``REPRO_BENCH_QUERIES`` queries per sweep point (default 3; the
paper uses 50).  EXPERIMENTS.md documents runs and deviations.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import ExperimentScale, build_dataset
from repro.bench.harness import ExperimentHarness
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.index import GATConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "3"))

#: Grid depth used by benchmark GAT indexes.  The paper uses d=8 over a
#: full metro area (~400 m cells); our scaled city is ~sqrt(scale) as wide,
#: so d=6 gives comparable cell sizes (see EXPERIMENTS.md).
BENCH_GAT_DEPTH = int(os.environ.get("REPRO_BENCH_GAT_DEPTH", "6"))


def bench_scale() -> ExperimentScale:
    return ExperimentScale(dataset_scale=BENCH_SCALE, n_queries=BENCH_QUERIES)


def bench_gat_config() -> GATConfig:
    return GATConfig(depth=BENCH_GAT_DEPTH, memory_levels=min(6, BENCH_GAT_DEPTH))


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


@pytest.fixture(scope="session")
def la_db(scale):
    return build_dataset("la", scale)


@pytest.fixture(scope="session")
def ny_db(scale):
    return build_dataset("ny", scale)


@pytest.fixture(scope="session")
def la_harness(la_db):
    return ExperimentHarness(la_db, gat_config=bench_gat_config())


@pytest.fixture(scope="session")
def ny_harness(ny_db):
    return ExperimentHarness(ny_db, gat_config=bench_gat_config())


@pytest.fixture(scope="session")
def la_queries(la_db, scale):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=scale.seed))
    return gen.queries(scale.n_queries)


@pytest.fixture(scope="session")
def ny_queries(ny_db, scale):
    gen = QueryWorkloadGenerator(ny_db, WorkloadConfig(seed=scale.seed))
    return gen.queries(scale.n_queries)
