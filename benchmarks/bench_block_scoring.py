"""Block vs vectorized scoring + shard-local retrieval grids — BENCH_block.json.

Not a paper figure: this tracks the PR-4 candidate-block scoring engine on
the **Figure 7 scalability dataset** (the NY-like database at bench
scale, the top rung of the Fig. 7 ladder).  One GAT index serves engines
that differ only in ``EngineConfig.kernel``; every run is sequential with
cold caches (no APL LRU, HICL cache cleared per query), so the
measurement isolates scoring from batching and cache effects.  Two query
shapes are swept:

* ``|q.phi| = 1`` — single-activity query points, where the whole block
  (distances, ``Dmm`` masked minima, the ``Dmom`` DP) stays in NumPy
  array ops end to end;
* ``|q.phi| = 3`` — the workload generator's default mixed shape, where
  the block computes the per-row set covers through the partition
  decomposition and only surviving ``Dmom`` DPs fall back per candidate.

Asserted acceptance bars (each kernel's *scoring-stage* wall time — the
code the kernel switch actually selects; retrieval, validation, and the
simulated disk are byte-identical across kernels and dilute end-to-end
ratios, which are reported alongside):

* **≥2× scoring speedup** block over vectorized on the single-activity
  workload (typical: ~2.1× at the default bench scale);
* **≥1.15× scoring speedup** on the default mixed workload (typical:
  ~1.4×);
* **identical top-k** — same ids in the same order, distances to 1e-9
  relative (the partition cover may re-associate 3+-term sums by a last
  ulp) — and **identical pruning counters**, every
  :class:`SearchStats` field including disk reads;
* **sharded cell-expansion drop** — the new fleet defaults (spatial
  routing + shard-local grids + nearest-shard-first fan-out) expand at
  most 0.9× the grid cells of the old defaults (hash routing + global
  boxes) on the same workload under the deterministic serial executor,
  with rankings byte-identical to the single index.

The numbers are emitted as ``BENCH_block.json`` (override with
``REPRO_BENCH_BLOCK_JSON``), which the CI regression gate
(``benchmarks/check_bench_regressions.py``) diffs against the committed
baseline.
"""

import json
import math
import os
import time
from dataclasses import fields

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import GATSearchEngine
from repro.index.gat.index import GATIndex
from repro.service import QueryRequest
from repro.shard import ShardedGATIndex, ShardedQueryService

from conftest import BENCH_SCALE, bench_gat_config, bench_scale

K = 9
N_QUERIES = 16
N_SHARDS = 4
#: Timing repetitions per (workload, kernel), interleaved vectorized/block
#: so clock-speed drift hits both kernels alike; the best rep is scored.
REPS = 3

JSON_PATH = os.environ.get("REPRO_BENCH_BLOCK_JSON", "BENCH_block.json")

WORKLOAD_SHAPES = (
    ("single-activity", dict(n_activities_per_point=1)),
    ("mixed-default", dict()),
)

MIN_SCORING_SPEEDUP = {"single-activity": 2.0, "mixed-default": 1.15}
MAX_SHARD_CELL_RATIO = 0.9


@pytest.fixture(scope="module")
def gat_index(ny_db):
    return GATIndex.build(ny_db, bench_gat_config())


class _TimedScoring:
    """ScoringStage wrapper accumulating the scoring-stage wall time —
    the only stage the kernel switch changes."""

    def __init__(self, inner):
        self.inner = inner
        self.seconds = 0.0

    def score(self, ctx, candidate):
        t0 = time.perf_counter()
        value = self.inner.score(ctx, candidate)
        self.seconds += time.perf_counter() - t0
        return value

    def score_batch(self, ctx, candidates):
        t0 = time.perf_counter()
        values = self.inner.score_batch(ctx, candidates)
        self.seconds += time.perf_counter() - t0
        return values


def _stat_dict(stats):
    return {f.name: getattr(stats, f.name) for f in fields(stats)}


def _run_sequential(index, queries, kernel):
    """Cold-cache sequential loop; returns (total_s, scoring_s, answers,
    stats)."""
    engine = GATSearchEngine(index, apl_cache_size=0, kernel=kernel)
    engine._scoring = _TimedScoring(engine._scoring)
    answers, stats = [], []
    t0 = time.perf_counter()
    for i, q in enumerate(queries):
        index.hicl.clear_cache()
        ctx = engine.execute(q, K, order_sensitive=(i % 2 == 1))
        answers.append([(r.trajectory_id, r.distance) for r in ctx.ranked])
        stats.append(_stat_dict(ctx.stats))
    return time.perf_counter() - t0, engine._scoring.seconds, answers, stats


def _best_runs(index, queries):
    """Interleaved repetitions of both kernels; best (by scoring time)
    of each."""
    best = {}
    for _ in range(REPS):
        for kernel in ("vectorized", "block"):
            run = _run_sequential(index, queries, kernel)
            if kernel not in best or run[1] < best[kernel][1]:
                best[kernel] = run
    return best["vectorized"], best["block"]


def _assert_same_answers(a, b, what):
    assert [[t for t, _ in q] for q in a] == [[t for t, _ in q] for q in b], what
    for qa, qb in zip(a, b):
        for (_, da), (_, db) in zip(qa, qb):
            assert math.isclose(da, db, rel_tol=1e-9, abs_tol=1e-12), what


def _sharded_cells(db, requests, strategy, shard_box):
    """Fleet-total cells popped under the deterministic serial executor,
    plus the merged rankings."""
    sharded = ShardedGATIndex.build(
        db, n_shards=N_SHARDS, config=bench_gat_config(),
        strategy=strategy, shard_box=shard_box,
    )
    with ShardedQueryService(sharded, executor="serial", result_cache_size=0) as svc:
        responses = svc.search_many(requests)
    rankings = [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]
    return sum(r.stats.cells_popped for r in responses), rankings


@pytest.mark.benchmark(group="block-scoring")
def test_block_speedup_parity_and_shard_cells(benchmark, ny_db, gat_index):
    report = {"rows": [], "speedups": {}}

    def run():
        report["rows"].clear()
        report["speedups"].clear()
        for name, shape in WORKLOAD_SHAPES:
            gen = QueryWorkloadGenerator(
                ny_db, WorkloadConfig(seed=bench_scale().seed, **shape)
            )
            queries = gen.queries(N_QUERIES)
            (
                (v_total, v_scoring, v_ans, v_stats),
                (b_total, b_scoring, b_ans, b_stats),
            ) = _best_runs(gat_index, queries)
            _assert_same_answers(v_ans, b_ans, f"{name}: block vs vectorized top-k")
            assert v_stats == b_stats, f"{name}: counters must not move with the kernel"
            report["rows"].append(
                {
                    "workload": name,
                    "vectorized_total_s": round(v_total, 4),
                    "block_total_s": round(b_total, 4),
                    "vectorized_scoring_s": round(v_scoring, 4),
                    "block_scoring_s": round(b_scoring, 4),
                }
            )
            report["speedups"][name] = {
                "scoring": round(v_scoring / b_scoring, 3),
                "total": round(v_total / b_total, 3),
            }

        # Shard-local retrieval grids: old fleet defaults vs new, same
        # workload, deterministic serial fan-out, rankings pinned to the
        # single index (= the kernel runs above, whose answers the block
        # path already matched).
        gen = QueryWorkloadGenerator(ny_db, WorkloadConfig(seed=bench_scale().seed))
        requests = [
            QueryRequest(q, k=K, order_sensitive=(i % 2 == 1))
            for i, q in enumerate(gen.queries(N_QUERIES))
        ]
        single = GATSearchEngine(GATIndex.build(ny_db, bench_gat_config()))
        expected = []
        for r in requests:
            ctx = single.execute(r.query, r.k, order_sensitive=r.order_sensitive)
            expected.append([(x.trajectory_id, x.distance) for x in ctx.ranked])
        old_cells, old_ranks = _sharded_cells(ny_db, requests, "hash", "global")
        new_cells, new_ranks = _sharded_cells(ny_db, requests, "spatial", "local")
        assert old_ranks == expected, "hash/global fleet must match the single index"
        assert new_ranks == expected, "spatial/local fleet must match the single index"
        report["sharded"] = {
            "n_shards": N_SHARDS,
            "executor": "serial",
            "old_cells_hash_global": old_cells,
            "new_cells_spatial_local": new_cells,
            "cells_ratio": round(new_cells / old_cells, 3),
        }

    benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\nblock scoring (Fig. 7 NY dataset, {N_QUERIES} mixed ATSQ/OATSQ, "
          f"k={K}, cold caches, scale {BENCH_SCALE}):")
    for row in report["rows"]:
        s = report["speedups"][row["workload"]]
        print(f"  {row['workload']:16s} scoring {row['vectorized_scoring_s']:.3f}s -> "
              f"{row['block_scoring_s']:.3f}s ({s['scoring']:.2f}x)   "
              f"total {row['vectorized_total_s']:.3f}s -> {row['block_total_s']:.3f}s "
              f"({s['total']:.2f}x)")
    sh = report["sharded"]
    print(f"  shard cells       hash/global {sh['old_cells_hash_global']} -> "
          f"spatial/local {sh['new_cells_spatial_local']} "
          f"(ratio {sh['cells_ratio']:.2f}, {N_SHARDS} shards, serial)")

    payload = {
        "bench": "block_scoring",
        "scale": BENCH_SCALE,
        "n_queries": N_QUERIES,
        "k": K,
        "rows": report["rows"],
        "speedups": {
            name: values["scoring"] for name, values in report["speedups"].items()
        },
        "total_speedups": {
            name: values["total"] for name, values in report["speedups"].items()
        },
        "sharded": report["sharded"],
        "topk_identical": True,
        "counters_identical": True,
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"  wrote {JSON_PATH}")

    for name, minimum in MIN_SCORING_SPEEDUP.items():
        got = report["speedups"][name]["scoring"]
        assert got >= minimum, f"{name}: block scoring only {got:.2f}x (< {minimum}x)"
    ratio = report["sharded"]["cells_ratio"]
    assert ratio <= MAX_SHARD_CELL_RATIO, (
        f"shard-local grids expanded {ratio:.2f}x the cells of the global-box "
        f"fleet (need <= {MAX_SHARD_CELL_RATIO})"
    )
