"""Fault-tolerant serving — chaos scenarios, emitting BENCH_faults.json.

Not a paper figure: this measures the serving tier's failure envelope
(ROADMAP "Fault-tolerant serving").  Four scenarios, each asserting the
contract it exists to protect and emitting one JSON row:

* ``parity`` — a :class:`FaultPolicy` with no faults anywhere: the
  supervised fan-out must produce byte-identical rankings (and identical
  shard result counts) to the plain all-or-nothing service.  Fault
  tolerance must be free when nothing fails.
* ``disk-errors`` — every *primary* shard disk wears a seeded
  :class:`FaultInjector` erroring 10 % of reads; 2 replicas/shard serve
  behind the circuit-breaker router.  Retries fail over to the clean
  sibling copies, so every query must reach **full** coverage with exact
  rankings despite the media errors.
* ``shard-down`` — one shard's only copy errors every read.  With
  ``allow_partial`` the batch degrades gracefully: every response is
  partial with coverage ``(n_shards - 1)/n_shards`` and correct
  ``shards_answered/shards_total`` metadata, never an exception.
* ``worker-kill`` — the process fleet is warmed up, its workers are
  SIGKILLed (once before the batch, once mid-batch): the executor must
  retire the broken pools, re-initialise from the shared-memory-backed
  spec, replay the dead futures, and still return full-coverage exact
  rankings.

The gate (``check_bench_regressions.py``) pins the *correctness ratios*
(rankings-exact, completion fraction, partial coverage) — deterministic
1.0-style values, not wall seconds, so they transfer across machines.
Wall time and retry/hedge/repair counters ride along unasserted for the
printed report.
"""

import json
import threading
import time

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.faults import FaultInjector, FaultRule, kill_fleet_workers
from repro.shard import (
    BreakerConfig,
    FaultPolicy,
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
)
from repro.storage.disk import SimulatedDisk

from conftest import bench_gat_config, bench_scale

N_QUERIES = 12
K = 8
N_SHARDS = 2
ERROR_RATE = 0.10

BENCH_JSON = "BENCH_faults.json"


@pytest.fixture(scope="module")
def workload(la_db):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    return gen.queries(N_QUERIES)


def _rankings(responses):
    return [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]


def _row(scenario, wall, responses, stats, **extra):
    complete = sum(1 for r in responses if r.complete)
    coverage = [r.shards_answered / r.shards_total for r in responses]
    row = {
        "scenario": scenario,
        "queries": len(responses),
        "wall_s": round(wall, 4),
        "qps": round(len(responses) / wall, 2) if wall > 0 else 0.0,
        "complete_frac": round(complete / len(responses), 4),
        "mean_coverage_frac": round(sum(coverage) / len(coverage), 4),
        "task_retries": stats.task_retries,
        "task_hedges": stats.task_hedges,
        "partial_responses": stats.partial_responses,
    }
    row.update(extra)
    return row


def _serve(service, workload, indexes=()):
    for index in indexes:
        index.hicl.clear_cache()
    t0 = time.perf_counter()
    responses = service.search_many(workload, k=K)
    wall = time.perf_counter() - t0
    return wall, responses


@pytest.mark.benchmark(group="fault-tolerance")
def test_fault_tolerance_scenarios(benchmark, la_db, workload):
    report = {}

    def run():
        rows = []
        # Ground truth: the plain all-or-nothing service, serial backend.
        sharded = ShardedGATIndex.build(
            la_db, n_shards=N_SHARDS, config=bench_gat_config()
        )
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as plain:
            wall, responses = _serve(plain, workload, sharded.shards)
        truth = _rankings(responses)

        # --- parity: supervision on, zero faults anywhere -------------
        with ShardedQueryService(
            sharded,
            executor="serial",
            result_cache_size=0,
            fault_policy=FaultPolicy(deadline_s=60.0, max_retries=2),
        ) as supervised:
            wall, responses = _serve(supervised, workload, sharded.shards)
            stats = supervised.stats()
        exact = _rankings(responses) == truth
        assert exact, "supervised fan-out changed rankings with no faults"
        assert stats.task_retries == 0 and stats.partial_responses == 0
        rows.append(
            _row("parity", wall, responses, stats, rankings_exact=float(exact))
        )

        # --- disk-errors: 10% faulty primaries, clean replicas --------
        injector = FaultInjector(FaultRule(error_rate=ERROR_RATE), seed=20130408)
        faulty = ShardedGATIndex.build(
            la_db,
            n_shards=N_SHARDS,
            config=bench_gat_config(),
            disk_factory=lambda: SimulatedDisk(fault_injector=injector),
        )
        with ReplicatedShardedService(
            faulty,
            executor="thread",
            n_replicas=2,
            result_cache_size=0,
            fault_policy=FaultPolicy(max_retries=4),
            breaker=BreakerConfig(failure_threshold=2, probation_after_s=60.0),
        ) as replicated:
            replica_shards = [
                shard for bank in replicated._replica_indexes for shard in bank
            ]
            wall, responses = _serve(
                replicated, workload, list(faulty.shards) + replica_shards
            )
            stats = replicated.stats()
        exact = _rankings(responses) == truth
        assert exact, "failover responses diverged from the healthy rankings"
        assert all(r.complete for r in responses), (
            "10% disk errors with clean replicas must still reach full coverage"
        )
        rows.append(
            _row(
                "disk-errors",
                wall,
                responses,
                stats,
                rankings_exact=float(exact),
                errors_injected=injector.errors_injected,
            )
        )

        # --- shard-down: one shard's only copy errors every read ------
        down = FaultInjector(FaultRule(error_rate=1.0), seed=7)
        disks = iter(
            [SimulatedDisk(fault_injector=down)]
            + [SimulatedDisk() for _ in range(N_SHARDS - 1)]
        )
        lame = ShardedGATIndex.build(
            la_db,
            n_shards=N_SHARDS,
            config=bench_gat_config(),
            disk_factory=lambda: next(disks),
        )
        with ShardedQueryService(
            lame,
            executor="thread",
            result_cache_size=0,
            fault_policy=FaultPolicy(max_retries=1, allow_partial=True),
        ) as degraded:
            wall, responses = _serve(degraded, workload, lame.shards)
            stats = degraded.stats()
        assert all(not r.complete for r in responses), (
            "a fully dead shard must degrade every response to partial"
        )
        assert all(
            r.shards_answered == N_SHARDS - 1 and r.shards_total == N_SHARDS
            for r in responses
        )
        rows.append(_row("shard-down", wall, responses, stats))

        # --- worker-kill: SIGKILL the process fleet, twice ------------
        shared = ShardedGATIndex.build(
            la_db, n_shards=N_SHARDS, config=bench_gat_config(), store="shared"
        )
        try:
            with ShardedQueryService(
                shared,
                executor="process",
                result_cache_size=0,
                fault_policy=FaultPolicy(max_retries=4),
            ) as fleet:
                fleet._executor.warm_up()
                kill_fleet_workers(fleet._executor, count=N_SHARDS, seed=1)

                def kill_one_quietly():
                    try:
                        kill_fleet_workers(fleet._executor, count=1, seed=2)
                    except RuntimeError:
                        pass  # fleet mid-repair: no live pids this instant

                killer = threading.Timer(0.2, kill_one_quietly)
                killer.start()
                try:
                    wall, responses = _serve(fleet, workload)
                finally:
                    killer.cancel()
                    killer.join()
                stats = fleet.stats()
                repairs = fleet._executor.pool_repairs
        finally:
            shared.close()
        exact = _rankings(responses) == truth
        assert exact, "post-kill rankings diverged from the healthy fleet"
        assert all(r.complete for r in responses)
        assert repairs >= 1, "the kill must have retired at least one pool"
        rows.append(
            _row(
                "worker-kill",
                wall,
                responses,
                stats,
                rankings_exact=float(exact),
                pool_repairs=repairs,
            )
        )
        report["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = report["rows"]
    with open(BENCH_JSON, "w") as fh:
        json.dump(
            {
                "n_queries": N_QUERIES,
                "k": K,
                "n_shards": N_SHARDS,
                "error_rate": ERROR_RATE,
                "rows": rows,
            },
            fh,
            indent=2,
        )
    print(f"\nfault tolerance ({N_QUERIES} queries, k={K}, {N_SHARDS} shards):")
    for row in rows:
        print(
            f"  {row['scenario']:12s}: {row['wall_s']:6.2f} s  "
            f"complete {row['complete_frac']:.0%}  "
            f"coverage {row['mean_coverage_frac']:.0%}  "
            f"{row['task_retries']} retries  "
            f"{row['partial_responses']} partial"
        )
