"""Open-loop serving under overload — emitting BENCH_serving.json.

Not a paper figure: this measures the serving front-end's overload
envelope (ROADMAP "Async open-loop serving tier").  Three stages:

* **calibrate** — a sequential closed-loop pass captures the oracle
  rankings, then a *concurrent* closed loop (``CONCURRENCY`` workers,
  ~1.2 s) measures saturation throughput directly — sequential service
  time badly underestimates per-query latency under contention (GIL +
  serialized simulated disk), so capacity is measured, not derived.
* **saturation sweep** — seeded Poisson arrivals at multiples of the
  estimated capacity, each point one open-loop run through
  :func:`repro.bench.harness.ExperimentHarness.run_open_loop`.  The
  *sustainable* rate is the highest point that still answers ≥95 % of
  offered requests within SLO while dropping ≤5 %.
* **overload** — 2× the sustainable rate, twice: once with SLO-aware
  shedding + deadline propagation, once with shedding off and a deep
  FIFO queue (the classic open-loop collapse).  The shedding front-end
  must keep goodput ≥ 0.7× the sweep's peak; the no-shedding baseline
  must do worse; and every request the shedding run *answered* must
  rank byte-identically to the closed-loop oracle — overload handling
  may refuse queries, never corrupt them.

The regression gate pins ratios only (sustainable/capacity, overload
goodput ratio, rankings-exact) — they compare same-machine runs inside
one process, so they transfer from the seeding laptop to CI; absolute
QPS does not.
"""

import json
import time

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.serving import (
    PoissonArrivals,
    ServingConfig,
    ServingFrontend,
    run_open_loop,
)
from repro.service.service import as_request
from repro.shard import FaultPolicy, ShardedGATIndex, ShardedQueryService
from repro.storage.disk import SimulatedDisk

from conftest import bench_gat_config, bench_scale

N_QUERIES = 8
K = 8
N_SHARDS = 2
CONCURRENCY = 4
#: Per-read latency on every shard disk: keeps service time dominated by
#: simulated I/O rather than Python overhead, like a real deployment.
DISK_LATENCY_S = 0.0005
#: SLO as a multiple of the measured *concurrent* per-query time (room
#: for a short queue in front of the backend).
SLO_OVER_SERVICE = 4.0
#: How long the concurrent closed loop measures saturation throughput.
CALIBRATION_S = 1.2
SWEEP_MULTIPLIERS = [0.6, 0.8, 1.0, 1.25, 1.5]
SWEEP_DURATION_S = 2.0
OVERLOAD_DURATION_S = 2.5
SUSTAIN_WITHIN_SLO = 0.95
SUSTAIN_MAX_DROP = 0.05

BENCH_JSON = "BENCH_serving.json"


@pytest.fixture(scope="module")
def workload(la_db):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    return gen.queries(N_QUERIES)


def _fault_policy() -> FaultPolicy:
    # allow_partial so a propagated deadline degrades coverage instead of
    # raising; the front-end then expires the partial answer.
    return FaultPolicy(max_retries=1, allow_partial=True)


def _disk_factory():
    return SimulatedDisk(read_latency_s=DISK_LATENCY_S)


def _measure_capacity(service, workload) -> float:
    """Closed-loop saturation throughput: ``CONCURRENCY`` workers each
    hammering the service back-to-back for ``CALIBRATION_S``."""
    from concurrent.futures import ThreadPoolExecutor

    def worker(worker_id: int) -> int:
        done = 0
        deadline = time.perf_counter() + CALIBRATION_S
        i = worker_id
        while time.perf_counter() < deadline:
            service.search(as_request(workload[i % len(workload)], k=K))
            done += 1
            i += 1
        return done

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        completed = sum(pool.map(worker, range(CONCURRENCY)))
    return completed / (time.perf_counter() - t0)


def _overload_run(service, workload, config, rate_qps, slo_s, prime_s):
    with ServingFrontend(service, config) as frontend:
        frontend.prime(prime_s)
        report = run_open_loop(
            frontend,
            workload,
            PoissonArrivals(rate_qps, seed=11),
            duration_s=OVERLOAD_DURATION_S,
            slo_s=slo_s,
            deadline_s=slo_s,
            k=K,
        )
    return report


def _rankings_exact(report, oracle):
    """Fraction of the run's *answered* queries whose rankings match the
    closed-loop oracle exactly (1.0 = every answer byte-identical)."""
    checked = exact = 0
    for outcome in report.outcomes:
        if outcome.ranking is None:
            continue
        checked += 1
        if list(outcome.ranking) == oracle[outcome.index % len(oracle)]:
            exact += 1
    return checked, (exact / checked if checked else 1.0)


@pytest.mark.benchmark(group="open-loop-serving")
def test_open_loop_overload_envelope(benchmark, la_db, la_harness, workload):
    report = {}

    def run():
        # --- calibrate: closed-loop service time + oracle rankings ----
        index = ShardedGATIndex.build(
            la_db,
            n_shards=N_SHARDS,
            config=bench_gat_config(),
            disk_factory=_disk_factory,
        )
        with ShardedQueryService(
            index,
            executor="thread",
            fault_policy=_fault_policy(),
            result_cache_size=0,
        ) as service:
            for query in workload:  # warm caches once
                service.search(as_request(query, k=K))
            oracle = [
                [
                    (r.trajectory_id, r.distance)
                    for r in service.search(as_request(q, k=K)).results
                ]
                for q in workload
            ]
            capacity_qps = _measure_capacity(service, workload)
            # Mean per-query time as concurrent callers actually see it.
            mean_service_s = CONCURRENCY / capacity_qps
            slo_s = SLO_OVER_SERVICE * mean_service_s

            # --- saturation sweep (fresh stack per point, public API) -
            shed_config = ServingConfig(
                queue_capacity=64,
                max_concurrency=CONCURRENCY,
                default_deadline_s=slo_s,
                shed_headroom=1.5,
            )
            rows = []
            for i, multiplier in enumerate(SWEEP_MULTIPLIERS):
                rate = multiplier * capacity_qps
                timing = la_harness.run_open_loop(
                    workload,
                    K,
                    rate_qps=rate,
                    duration_s=SWEEP_DURATION_S,
                    slo_s=slo_s,
                    seed=20130408 + i,
                    n_shards=N_SHARDS,
                    serving_config=shed_config,
                    fault_policy=_fault_policy(),
                    disk_factory=_disk_factory,
                )
                extra = timing.extra
                within = (
                    extra["goodput_qps"] / extra["offered_qps"]
                    if extra["offered_qps"]
                    else 0.0
                )
                rows.append(
                    {
                        "multiplier": multiplier,
                        "rate_qps": round(rate, 2),
                        "offered_qps": round(extra["offered_qps"], 2),
                        "goodput_qps": round(extra["goodput_qps"], 2),
                        "within_slo_frac": round(within, 4),
                        "shed_frac": round(extra["shed_frac"], 4),
                        "drop_frac": round(extra["drop_frac"], 4),
                        "p95_ms": extra["p95_ms"],
                    }
                )
            sustainable = [
                row
                for row in rows
                if row["within_slo_frac"] >= SUSTAIN_WITHIN_SLO
                and row["drop_frac"] <= SUSTAIN_MAX_DROP
            ]
            sustainable_qps = (
                max(row["rate_qps"] for row in sustainable)
                if sustainable
                else rows[0]["rate_qps"]
            )
            peak_goodput = max(row["goodput_qps"] for row in rows)

            # --- overload: 2x sustainable, shed vs no-shed ------------
            overload_qps = 2.0 * sustainable_qps
            shed_report = _overload_run(
                service, workload, shed_config, overload_qps, slo_s, mean_service_s
            )
            noshed_config = ServingConfig(
                queue_capacity=256,
                max_concurrency=CONCURRENCY,
                default_deadline_s=slo_s,
                shed=False,
                propagate_deadline=False,
            )
            noshed_report = _overload_run(
                service, workload, noshed_config, overload_qps, slo_s, mean_service_s
            )

        checked, exact_frac = _rankings_exact(shed_report, oracle)
        shed_ratio = shed_report.goodput_qps / peak_goodput if peak_goodput else 0.0
        noshed_ratio = (
            noshed_report.goodput_qps / peak_goodput if peak_goodput else 0.0
        )
        assert checked > 0, "overload run answered nothing; cannot check parity"
        assert exact_frac == 1.0, (
            "overload served rankings diverged from the closed-loop oracle"
        )
        assert shed_ratio >= 0.7, (
            f"shedding goodput collapsed under 2x overload: {shed_ratio:.2f} "
            f"of peak ({shed_report.goodput_qps:.1f} vs {peak_goodput:.1f} QPS)"
        )
        assert noshed_ratio < shed_ratio, (
            "the no-shedding baseline out-served the shedding front-end; "
            "shedding is not earning its keep"
        )
        report["data"] = {
            "n_queries": N_QUERIES,
            "k": K,
            "n_shards": N_SHARDS,
            "concurrency": CONCURRENCY,
            "mean_service_ms": round(mean_service_s * 1e3, 3),
            "capacity_qps": round(capacity_qps, 2),
            "slo_ms": round(slo_s * 1e3, 2),
            "sustainable_qps": round(sustainable_qps, 2),
            "sustainable_over_capacity": round(
                sustainable_qps / capacity_qps, 4
            ),
            "rows": rows,
            "overload": {
                "rate_qps": round(overload_qps, 2),
                "shed": {
                    **shed_report.row(),
                    "goodput_ratio": round(shed_ratio, 4),
                    "rankings_checked": checked,
                    "rankings_exact": round(exact_frac, 4),
                },
                "noshed": {
                    **noshed_report.row(),
                    "goodput_ratio": round(noshed_ratio, 4),
                },
            },
        }

    benchmark.pedantic(run, rounds=1, iterations=1)

    data = report["data"]
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2)
    print(
        f"\nopen-loop serving (capacity ~{data['capacity_qps']:.0f} QPS, "
        f"SLO {data['slo_ms']:.0f} ms, sustainable {data['sustainable_qps']:.0f} QPS):"
    )
    for row in data["rows"]:
        print(
            f"  {row['multiplier']:>4.2f}x: offered {row['offered_qps']:7.1f}/s  "
            f"goodput {row['goodput_qps']:7.1f}/s  "
            f"within-SLO {row['within_slo_frac']:.0%}  "
            f"shed {row['shed_frac']:.0%}"
        )
    over = data["overload"]
    print(
        f"  2x overload @ {over['rate_qps']:.0f} QPS: "
        f"shed goodput {over['shed']['goodput_qps']:.1f}/s "
        f"({over['shed']['goodput_ratio']:.0%} of peak, rankings exact "
        f"{over['shed']['rankings_exact']:.0%}) vs no-shed "
        f"{over['noshed']['goodput_qps']:.1f}/s "
        f"({over['noshed']['goodput_ratio']:.0%})"
    )
