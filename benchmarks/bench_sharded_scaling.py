"""Sharded serving — batched throughput vs shard count, emitting BENCH_shards.json.

Not a paper figure: this measures the scale-out layer the reproduction
grows beyond the paper.  One workload of distinct queries is served by a
:class:`ShardedQueryService` at 1, 2, and 4 shards under the **paper's
cold-I/O cost model**: every surviving candidate pays a counted APL read
(no APL cache, like the figure harness) on its shard's own simulated disk
at an HDD-class random-read latency.  That is the regime the sharded
subsystem targets — per-query disk work splits across shards and overlaps
in parallel, while the distributed-top-k threshold (shards prune against
the cross-shard merged k-th) keeps validation work near the single-index
count.  Warm-cache single-engine serving is bench_service_throughput's
topic.

Every shard count gets the same per-shard worker budget (the thread
default, ``4 × n_shards``): the point of scale-out is that capacity grows
with the fleet.  Rankings are asserted identical across all rows, and the
acceptance bar is ≥1.5× batched throughput at 4 shards vs 1 shard.  A
4-shard process-pool row is measured for the GIL-free path (reported, not
asserted — its margin is core-count-bound, and on an I/O-dominated
workload its overlap is capped by the worker count).

``BENCH_shards.json`` rows: shard count, executor, wall seconds, QPS, and
speedup vs the 1-shard baseline.
"""

import json

import pytest

from repro.bench.workloads import (
    QueryWorkloadGenerator,
    WorkloadConfig,
    mixed_order_requests,
)
from repro.core.engine import EngineConfig
from repro.shard import ShardedGATIndex, ShardedQueryService
from repro.storage.disk import SimulatedDisk

from conftest import bench_gat_config, bench_scale

#: HDD-class random 4K read (seek + half-rotation): the paper stores the
#: APL "on hard disk".  I/O-dominant workloads also keep the speedup
#: assertion robust on slow CI runners — sleeps overlap, GIL-bound
#: compute would not.
READ_LATENCY_S = 5e-3
N_QUERIES = 24
K = 9
SHARD_COUNTS = (1, 2, 4)

#: The figure harness's cold protocol: every surviving candidate is one
#: counted, latency-bearing APL read.
ENGINE_CONFIG = EngineConfig(apl_cache_size=0)

BENCH_JSON = "BENCH_shards.json"


@pytest.fixture(scope="module")
def workload(la_db):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    return mixed_order_requests(gen.queries(N_QUERIES), K)


def _disk_factory():
    return SimulatedDisk(read_latency_s=READ_LATENCY_S)


def _build_service(db, n_shards, executor="thread"):
    sharded = ShardedGATIndex.build(
        db, n_shards=n_shards, config=bench_gat_config(), disk_factory=_disk_factory
    )
    return ShardedQueryService(
        sharded, engine_config=ENGINE_CONFIG, executor=executor, result_cache_size=0
    )


def _run(service, workload):
    import time

    t0 = time.perf_counter()
    responses = service.search_many(workload)
    wall = time.perf_counter() - t0
    return wall, responses


def _rankings(responses):
    return [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]


@pytest.mark.benchmark(group="sharded-scaling")
def test_sharded_scaling_speedup_and_parity(benchmark, la_db, workload):
    report = {}

    def run():
        rows = []
        baseline = None
        for n_shards in SHARD_COUNTS:
            service = _build_service(la_db, n_shards)
            try:
                wall, responses = _run(service, workload)
            finally:
                service.close()
            rankings = _rankings(responses)
            if baseline is None:
                baseline = {"wall": wall, "rankings": rankings}
            # Exactness across the sweep: every shard count returns the
            # 1-shard rankings byte-for-byte.
            assert rankings == baseline["rankings"], n_shards
            rows.append(
                {
                    "shards": n_shards,
                    "executor": "thread",
                    "queries": len(responses),
                    "wall_s": round(wall, 4),
                    "qps": round(len(responses) / wall, 2),
                    "speedup_vs_1shard": round(baseline["wall"] / wall, 3),
                    "disk_reads": sum(r.stats.disk_reads for r in responses),
                }
            )
        # The GIL-free path: 4 shards over a process pool, workers warmed
        # by one throwaway batch so engine builds don't pollute the timing.
        service = _build_service(la_db, 4, executor="process")
        try:
            service.search_many(workload[:4])
            wall, responses = _run(service, workload)
        finally:
            service.close()
        assert _rankings(responses) == baseline["rankings"]
        rows.append(
            {
                "shards": 4,
                "executor": "process",
                "queries": len(responses),
                "wall_s": round(wall, 4),
                "qps": round(len(responses) / wall, 2),
                "speedup_vs_1shard": round(baseline["wall"] / wall, 3),
                "disk_reads": sum(r.stats.disk_reads for r in responses),
            }
        )
        report["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = report["rows"]
    with open(BENCH_JSON, "w") as fh:
        json.dump(
            {
                "n_queries": N_QUERIES,
                "k": K,
                "read_latency_s": READ_LATENCY_S,
                "rows": rows,
            },
            fh,
            indent=2,
        )
    print(f"\nsharded scaling ({N_QUERIES} mixed ATSQ/OATSQ, k={K}, cold APL, "
          f"{READ_LATENCY_S * 1e3:.0f} ms/read, identical rankings asserted):")
    for row in rows:
        print(f"  {row['shards']} shards ({row['executor']:7s}): "
              f"{row['wall_s']:6.2f} s  {row['qps']:7.1f} QPS  "
              f"{row['speedup_vs_1shard']:.2f}x vs 1 shard  "
              f"({row['disk_reads']} reads)")
    by_key = {(r["shards"], r["executor"]): r for r in rows}
    speedup = by_key[(4, "thread")]["speedup_vs_1shard"]
    assert speedup >= 1.5, f"4-shard speedup {speedup:.2f}x < 1.5x"
