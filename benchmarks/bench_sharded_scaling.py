"""Sharded serving — scale-out throughput, emitting BENCH_shards.json
and BENCH_process.json.

Not a paper figure: this measures the scale-out layer the reproduction
grows beyond the paper.  Two regimes, two records:

**I/O-bound sweep** (``BENCH_shards.json``): one workload of distinct
queries served by a :class:`ShardedQueryService` at 1, 2, and 4 shards
under the **paper's cold-I/O cost model** — every surviving candidate
pays a counted APL read (no APL cache, like the figure harness) on its
shard's own simulated disk at an HDD-class random-read latency.  Per-
query disk work splits across shards and overlaps in parallel, while the
distributed-top-k threshold (shards prune against the cross-shard merged
k-th) keeps validation work near the single-index count.  Acceptance bar:
≥1.5× batched throughput at 4 shards vs 1 shard (measured ~3.6×).

**CPU-bound process fleet** (``BENCH_process.json``): zero-latency disks
and the scalar (pure-Python, GIL-bound) kernel — the regime where thread
fan-out buys nothing and only real processes scale.  Four shards over the
zero-copy shared-memory store (``store='shared'``): workers *attach* to
the one columnar copy of the dataset instead of unpickling an engine
spec, so the fleet's steady-state speed is what the cores allow.
Acceptance bar: the process backend beats threads by ≥1.5× — asserted
only when the machine actually has ≥2 usable cores (a single-core runner
cannot demonstrate multi-core scaling; CI runners can and do).  The
object-store process row rides along to price attach vs rebuild:
``setup_s`` (pool spawn + worker engine builds) and the pickled spec
size, which drops from the whole dataset to segment names + ID tuples.

Every row reports ``setup_s`` (service construction, worker spawn,
attach/rebuild, first-touch engine builds — the warm-up batch) separately
from steady-state ``wall_s``/``qps``, so store-attach wins are visible
and regression-gated apart from serving speed.  Rankings are asserted
identical across *all* rows of both records.
"""

import json
import os
import pickle
import time

import pytest

from repro.bench.workloads import (
    QueryWorkloadGenerator,
    WorkloadConfig,
    mixed_order_requests,
)
from repro.core.engine import EngineConfig
from repro.shard import ShardedGATIndex, ShardedQueryService
from repro.storage.disk import SimulatedDisk

from conftest import bench_gat_config, bench_scale

#: HDD-class random 4K read (seek + half-rotation): the paper stores the
#: APL "on hard disk".  I/O-dominant workloads also keep the speedup
#: assertion robust on slow CI runners — sleeps overlap, GIL-bound
#: compute would not.
READ_LATENCY_S = 5e-3
N_QUERIES = 24
K = 9
SHARD_COUNTS = (1, 2, 4)

#: Queries of every workload spent warming a service before its timed
#: steady-state run: pool spawn, shared-store attach / spec unpickle, and
#: first-touch worker engine builds all land in ``setup_s``.
N_WARM = 4

#: The figure harness's cold protocol: every surviving candidate is one
#: counted, latency-bearing APL read.
ENGINE_CONFIG = EngineConfig(apl_cache_size=0)

#: The CPU-bound fleet row: pure-Python scalar scoring holds the GIL for
#: the whole validation phase, so threads serialise and processes don't.
CPU_ENGINE_CONFIG = EngineConfig(kernel="scalar", apl_cache_size=0)
CPU_N_QUERIES = 12
CPU_SHARDS = 4

BENCH_JSON = "BENCH_shards.json"
PROCESS_JSON = "BENCH_process.json"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def workload(la_db):
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    return mixed_order_requests(gen.queries(N_QUERIES), K)


def _disk_factory():
    return SimulatedDisk(read_latency_s=READ_LATENCY_S)


def _timed_service(
    db,
    n_shards,
    workload,
    executor="thread",
    store="object",
    engine_config=ENGINE_CONFIG,
    disk_factory=_disk_factory,
):
    """Build + warm + steady-run one service configuration.

    Returns ``(setup_s, wall_s, responses, spec_bytes)`` where ``setup_s``
    covers index build, service construction, and the ``N_WARM``-query
    warm-up batch (executor pool spawn, shared-store attach or engine-spec
    unpickle, first-touch worker engine builds), and ``wall_s`` is the
    steady-state serving time for the full workload.  ``spec_bytes`` is
    the pickled size of the worker hand-off (`ShardEngineSpec`) — the
    bytes an executor refresh actually ships.
    """
    t0 = time.perf_counter()
    sharded = ShardedGATIndex.build(
        db,
        n_shards=n_shards,
        config=bench_gat_config(),
        disk_factory=disk_factory,
        store=store,
    )
    service = ShardedQueryService(
        sharded, engine_config=engine_config, executor=executor, result_cache_size=0
    )
    try:
        service.search_many(workload[:N_WARM])
        setup_s = time.perf_counter() - t0
        spec_bytes = len(
            pickle.dumps(service._make_spec(), protocol=pickle.HIGHEST_PROTOCOL)
        )
        t0 = time.perf_counter()
        responses = service.search_many(workload)
        wall_s = time.perf_counter() - t0
    finally:
        service.close()
        sharded.close()
    return setup_s, wall_s, responses, spec_bytes


def _rankings(responses):
    return [
        [(r.trajectory_id, r.distance) for r in resp.results] for resp in responses
    ]


def _row(n_shards, executor, store, setup_s, wall_s, responses,
         baseline_wall=None, speedup_key="speedup_vs_1shard"):
    row = {
        "shards": n_shards,
        "executor": executor,
        "store": store,
        "queries": len(responses),
        "setup_s": round(setup_s, 4),
        "wall_s": round(wall_s, 4),
        "qps": round(len(responses) / wall_s, 2),
        "disk_reads": sum(r.stats.disk_reads for r in responses),
    }
    if baseline_wall is not None:
        row[speedup_key] = round(baseline_wall / wall_s, 3)
    return row


@pytest.mark.benchmark(group="sharded-scaling")
def test_sharded_scaling_speedup_and_parity(benchmark, la_db, workload):
    report = {}

    def run():
        rows = []
        baseline = None
        for n_shards in SHARD_COUNTS:
            setup_s, wall, responses, _ = _timed_service(la_db, n_shards, workload)
            rankings = _rankings(responses)
            if baseline is None:
                baseline = {"wall": wall, "rankings": rankings}
            # Exactness across the sweep: every shard count returns the
            # 1-shard rankings byte-for-byte.
            assert rankings == baseline["rankings"], n_shards
            rows.append(
                _row(n_shards, "thread", "object", setup_s, wall, responses,
                     baseline["wall"])
            )
        # The GIL-free path at 4 shards, both transports: the object
        # snapshot (workers unpickle the dataset) and the shared store
        # (workers attach to the columnar segments).  Steady-state speed
        # is I/O-bound and near-equal; setup_s and spec bytes are where
        # attach beats rebuild.
        for store in ("object", "shared"):
            setup_s, wall, responses, _ = _timed_service(
                la_db, 4, workload, executor="process", store=store
            )
            assert _rankings(responses) == baseline["rankings"], store
            rows.append(
                _row(4, "process", store, setup_s, wall, responses,
                     baseline["wall"])
            )
        report["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = report["rows"]
    with open(BENCH_JSON, "w") as fh:
        json.dump(
            {
                "n_queries": N_QUERIES,
                "k": K,
                "read_latency_s": READ_LATENCY_S,
                "n_warm": N_WARM,
                "rows": rows,
            },
            fh,
            indent=2,
        )
    print(f"\nsharded scaling ({N_QUERIES} mixed ATSQ/OATSQ, k={K}, cold APL, "
          f"{READ_LATENCY_S * 1e3:.0f} ms/read, identical rankings asserted):")
    for row in rows:
        print(f"  {row['shards']} shards ({row['executor']:7s}/{row['store']:6s}): "
              f"setup {row['setup_s']:5.2f} s  steady {row['wall_s']:6.2f} s  "
              f"{row['qps']:7.1f} QPS  {row['speedup_vs_1shard']:.2f}x vs 1 shard  "
              f"({row['disk_reads']} reads)")
    by_key = {(r["shards"], r["executor"], r["store"]): r for r in rows}
    speedup = by_key[(4, "thread", "object")]["speedup_vs_1shard"]
    assert speedup >= 1.5, f"4-shard speedup {speedup:.2f}x < 1.5x"


@pytest.mark.benchmark(group="process-fleet")
def test_process_fleet_cpu_bound(benchmark, la_db):
    """The tentpole gate: on CPU-bound work the process fleet over the
    shared store must beat threads — real multi-core scaling, not pool
    overhead hidden behind I/O sleeps."""
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=bench_scale().seed))
    workload = mixed_order_requests(gen.queries(CPU_N_QUERIES), K)
    cores = _usable_cores()
    report = {}

    def run():
        rows = []
        spec_bytes = {}
        rankings = None
        for executor, store in (
            ("thread", "shared"),
            ("process", "object"),
            ("process", "shared"),
        ):
            setup_s, wall, responses, nbytes = _timed_service(
                la_db,
                CPU_SHARDS,
                workload,
                executor=executor,
                store=store,
                engine_config=CPU_ENGINE_CONFIG,
                disk_factory=None,
            )
            if executor == "process":
                spec_bytes[store] = nbytes
            got = _rankings(responses)
            if rankings is None:
                rankings = got
            # Byte-identical rankings across executors and stores.
            assert got == rankings, (executor, store)
            rows.append(
                _row(CPU_SHARDS, executor, store, setup_s, wall, responses)
            )
        report["rows"] = rows
        report["spec_bytes"] = {
            "object": spec_bytes["object"],
            "shared": spec_bytes["shared"],
            # Deterministic transport-size ratio: segment names + ID
            # tuples over the full pickled dataset.
            "shared_over_object": round(
                spec_bytes["shared"] / spec_bytes["object"], 4
            ),
        }

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = report["rows"]
    by = {(r["executor"], r["store"]): r for r in rows}
    ratio = round(
        by[("thread", "shared")]["wall_s"] / by[("process", "shared")]["wall_s"], 3
    )
    payload = {
        "n_queries": CPU_N_QUERIES,
        "k": K,
        "shards": CPU_SHARDS,
        "kernel": "scalar",
        "read_latency_s": 0.0,
        "n_warm": N_WARM,
        "cores": cores,
        "rows": rows,
        "process_vs_thread": ratio,
        "spec_bytes": report["spec_bytes"],
    }
    with open(PROCESS_JSON, "w") as fh:
        json.dump(payload, fh, indent=2)

    print(f"\nprocess fleet, CPU-bound ({CPU_N_QUERIES} queries, k={K}, "
          f"{CPU_SHARDS} shards, scalar kernel, zero-latency disks, "
          f"{cores} usable core(s)):")
    for row in rows:
        print(f"  {row['executor']:7s}/{row['store']:6s}: "
              f"setup {row['setup_s']:5.2f} s  steady {row['wall_s']:6.2f} s  "
              f"{row['qps']:6.2f} QPS")
    sb = report["spec_bytes"]
    print(f"  spec: object {sb['object'] / 1024:.0f} KiB -> shared "
          f"{sb['shared'] / 1024:.1f} KiB "
          f"({sb['shared_over_object']:.1%} of the object snapshot)")
    print(f"  process vs thread (shared store): {ratio:.2f}x")

    # The shared spec must be a small fraction of the object snapshot —
    # attach ships names and IDs, never the dataset.
    assert sb["shared_over_object"] < 0.5, sb
    if cores >= 2:
        assert ratio >= 1.5, (
            f"process backend {ratio:.2f}x vs threads < 1.5x on CPU-bound "
            f"work with {cores} cores — the fleet is not scaling"
        )
    else:
        print("  (single-core machine: the >=1.5x process-vs-thread gate "
              "needs >=2 cores and is enforced on CI)")
