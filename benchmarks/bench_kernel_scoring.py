"""Vectorized vs scalar scoring kernels — sequential cold-cache hot path.

Not a paper figure: this tracks the PR-2 throughput work.  One GAT index
serves two engines that differ only in ``EngineConfig.kernel``; both run
the same mixed ATSQ/OATSQ workload sequentially with cold caches (the
seed's per-query behaviour: no APL LRU, HICL cache cleared per query), so
the measurement isolates the scoring kernels from batching and cache
effects.

Asserted acceptance bar:

* **≥2× speedup** vectorized over scalar (typical: 5-7× at the default
  bench scale — the scalar path burns its time in per-point metric calls
  and per-(i,j,k) PointMatchTable updates);
* **identical top-k** — same trajectory ids in the same order, distances
  equal to 1e-9 relative (NumPy elementwise rounding and the Dmom scan's
  re-association differ from libm in the last ulp);
* **identical pruning counters** — every :class:`SearchStats` field,
  including disk reads — across both kernels *and* across the
  ``fetch``/``fetch_many`` APL paths (``batch_io`` on/off).

The numbers are also emitted as ``BENCH_kernels.json`` (override the path
with ``REPRO_BENCH_KERNELS_JSON``) so CI archives a machine-readable
record of the speedup.
"""

import json
import math
import os
import time
from dataclasses import fields

import pytest

from repro.core.engine import EngineConfig, GATSearchEngine
from repro.index.gat.index import GATIndex

from conftest import BENCH_SCALE, bench_gat_config

K = 9

JSON_PATH = os.environ.get("REPRO_BENCH_KERNELS_JSON", "BENCH_kernels.json")


@pytest.fixture(scope="module")
def gat_index(la_db):
    return GATIndex.build(la_db, bench_gat_config())


def _stat_dict(stats):
    return {f.name: getattr(stats, f.name) for f in fields(stats)}


def _run_sequential(index, queries, **engine_kwargs):
    """Sequential cold-cache loop; returns (seconds, answers, stats)."""
    engine = GATSearchEngine(index, apl_cache_size=0, **engine_kwargs)
    answers, stats = [], []
    t0 = time.perf_counter()
    for i, q in enumerate(queries):
        index.hicl.clear_cache()
        ctx = engine.execute(q, K, order_sensitive=(i % 2 == 1))
        answers.append([(r.trajectory_id, r.distance) for r in ctx.ranked])
        stats.append(_stat_dict(ctx.stats))
    return time.perf_counter() - t0, answers, stats


def _assert_same_answers(a, b, what):
    assert [[t for t, _ in q] for q in a] == [[t for t, _ in q] for q in b], what
    for qa, qb in zip(a, b):
        for (_, da), (_, db) in zip(qa, qb):
            assert math.isclose(da, db, rel_tol=1e-9, abs_tol=1e-12), what


@pytest.mark.benchmark(group="kernel-scoring")
def test_kernel_speedup_and_parity(benchmark, gat_index, la_queries):
    report = {}

    def run():
        report["scalar"] = _run_sequential(gat_index, la_queries, kernel="scalar")
        report["vectorized"] = _run_sequential(
            gat_index, la_queries, kernel="vectorized"
        )
        report["unbatched_io"] = _run_sequential(
            gat_index, la_queries, kernel="vectorized", batch_io=False
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    s_secs, s_ans, s_stats = report["scalar"]
    v_secs, v_ans, v_stats = report["vectorized"]
    u_secs, u_ans, u_stats = report["unbatched_io"]
    n = len(la_queries)
    speedup = s_secs / v_secs

    _assert_same_answers(s_ans, v_ans, "scalar vs vectorized top-k")
    assert s_stats == v_stats, "pruning counters must not move with the kernel"
    _assert_same_answers(v_ans, u_ans, "fetch_many vs fetch top-k")
    assert v_stats == u_stats, "batch_io must not move any counter"

    print(f"\nkernel scoring ({n} mixed ATSQ/OATSQ, k={K}, cold caches, "
          f"scale {BENCH_SCALE}):")
    print(f"  scalar kernel     : {s_secs:.3f} s  ({s_secs / n * 1000:.1f} ms/query)")
    print(f"  vectorized kernel : {v_secs:.3f} s  ({v_secs / n * 1000:.1f} ms/query)")
    print(f"  fetch_many off    : {u_secs:.3f} s  (same answers, same counters)")
    print(f"  speedup           : {speedup:.2f}x")

    payload = {
        "bench": "kernel_scoring",
        "scale": BENCH_SCALE,
        "n_queries": n,
        "k": K,
        "scalar_s_per_query": s_secs / n,
        "vectorized_s_per_query": v_secs / n,
        "speedup": speedup,
        "topk_identical": True,
        "counters_identical": True,
        "fetch_many_parity": True,
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"  wrote {JSON_PATH}")

    assert speedup >= 2.0, f"vectorized kernel only {speedup:.2f}x faster"


@pytest.mark.benchmark(group="kernel-scoring-each")
@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
def test_kernel_benchmark(benchmark, gat_index, la_queries, kernel):
    engine = GATSearchEngine(gat_index, apl_cache_size=0, kernel=kernel)

    def run():
        for i, q in enumerate(la_queries):
            gat_index.hicl.clear_cache()
            engine.execute(q, K, order_sensitive=(i % 2 == 1))

    benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.benchmark(group="kernel-config")
def test_engine_config_round_trip(benchmark, gat_index):
    """EngineConfig carries the kernel switch end to end (smoke)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = EngineConfig(kernel="scalar", batch_io=False, apl_cache_size=0)
    engine = GATSearchEngine(gat_index, config=config)
    assert engine.kernel == "scalar"
    assert engine.config.batch_io is False
