"""Figure 6 — effect of the query diameter δ(Q) (panels a-d).

Paper sweeps δ(Q) over {5, 10, 20, 30, 50} km on a full metro area.  Our
scaled city is sqrt(scale) as wide, so the sweep uses the same *fractions*
of the city diagonal as the paper's values are of ~100 km (documented in
EXPERIMENTS.md).

Paper shape: IL flat (no geometry in retrieval); RT/IRT/GAT all slow down
as the query spreads (each query point's neighbourhood is disjoint, so
more cells/nodes get expanded).
"""

import math

import pytest

from repro.bench.experiments import DEFAULT_K, effect_of_diameter
from repro.bench.reporting import format_series_table

PAPER_DIAMETERS_KM = (5.0, 10.0, 20.0, 30.0, 50.0)
PAPER_CITY_DIAGONAL_KM = 100.0


def _scaled_diameters(db):
    box = db.bounding_box
    diagonal = math.hypot(box.width, box.height)
    return tuple(d / PAPER_CITY_DIAGONAL_KM * diagonal for d in PAPER_DIAMETERS_KM)


@pytest.mark.benchmark(group="fig6-full-sweep")
def test_figure6_sweep(benchmark, la_harness, ny_harness, la_db, ny_db, scale):
    tables = []

    def run():
        tables.clear()
        _collect(tables, la_harness, ny_harness, la_db, ny_db, scale)

    benchmark.pedantic(run, rounds=1, iterations=1)
    for table in tables:
        print(table)


def _collect(tables, la_harness, ny_harness, la_db, ny_db, scale):
    for label, db, harness in (("LA", la_db, la_harness), ("NY", ny_db, ny_harness)):
        diameters = _scaled_diameters(db)
        for order_sensitive, qtype in ((False, "ATSQ"), (True, "OATSQ")):
            results = effect_of_diameter(
                db,
                scale,
                order_sensitive=order_sensitive,
                diameters=diameters,
                harness=harness,
            )
            # Label rows with the paper-equivalent diameters for readability.
            for point, paper_d in zip(results, PAPER_DIAMETERS_KM):
                point.x_value = f"{float(point.x_value):.1f} (~{paper_d:g}km paper)"
            tables.append(
                format_series_table(
                    f"Figure 6 — {qtype} on {label}, varying delta(Q)", results
                )
            )


@pytest.mark.parametrize("frac_idx", [0, 2, 4])
@pytest.mark.benchmark(group="fig6-gat-atsq-la")
def test_gat_atsq_by_diameter(benchmark, la_harness, la_db, scale, frac_idx):
    from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig

    diameter = _scaled_diameters(la_db)[frac_idx]
    gen = QueryWorkloadGenerator(la_db, WorkloadConfig(seed=scale.seed))
    queries = gen.queries_with_diameter(scale.n_queries, diameter)
    gat = la_harness.searchers["GAT"]

    def run():
        for q in queries:
            gat.atsq(q, DEFAULT_K)

    benchmark.pedantic(run, rounds=2, iterations=1)
