#!/usr/bin/env python
"""Perf regression gate over the emitted ``BENCH_*.json`` records.

Each benchmark writes a machine-readable JSON (``BENCH_kernels.json``,
``BENCH_shards.json``, ``BENCH_block.json``); this script diffs freshly
emitted files against the committed baselines in
``benchmarks/baselines/`` and fails when a gated metric regresses beyond
the tolerance band (default: 30 %).

Gated metrics are *ratios* (speedups, cell-expansion ratios), never raw
wall seconds — ratios compare a change against a same-machine control run
inside one benchmark process, so they transfer between the laptop that
seeded the baseline and the CI runner that checks it; absolute timings do
not.

Usage::

    python benchmarks/check_bench_regressions.py                 # gate all
    python benchmarks/check_bench_regressions.py --only BENCH_block.json
    python benchmarks/check_bench_regressions.py --tolerance 0.2

Exit status 0 = no regression; 1 = regression or a gated file the
benchmarks should have produced is missing.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: metric path -> direction.  "higher" fails when the current value drops
#: more than the tolerance below baseline; "lower" fails when it rises
#: more than the tolerance above.  Paths are dot-separated; a
#: ``name[key=value,...]`` segment selects a dict from a list of dicts.
MANIFEST = {
    "BENCH_kernels.json": {
        "speedup": "higher",  # vectorized over scalar
    },
    "BENCH_shards.json": {
        "rows[shards=4,executor=thread].speedup_vs_1shard": "higher",
    },
    "BENCH_process.json": {
        # CPU-bound steady-state: the process fleet over the shared store
        # vs threads.  The seeded baseline comes from a single-core
        # machine (see the "cores" field) where this ratio cannot exceed
        # ~1.0; the in-benchmark >=1.5x assert is the real multi-core
        # gate, this row only catches collapses below the band.
        "process_vs_thread": "higher",
        # Deterministic transport size: the shared-store spec (segment
        # names + shard ID tuples) as a fraction of the pickled object
        # snapshot.  Rises only if someone starts shipping data again.
        "spec_bytes.shared_over_object": "lower",
    },
    "BENCH_replicas.json": {
        # The deterministic routers only; power-of-two is reported but its
        # thread interleaving is not reproducible enough to gate.
        "rows[replicas=2,router=round-robin].speedup_vs_1replica": "higher",
        "rows[replicas=2,router=least-in-flight].speedup_vs_1replica": "higher",
    },
    "BENCH_block.json": {
        "speedups.single-activity": "higher",  # block over vectorized
        "speedups.mixed-default": "higher",
        "sharded.cells_ratio": "lower",  # spatial/local over hash/global
    },
    "BENCH_obs.json": {
        # Pay-for-what-you-use: throughput with instrumentation present
        # but disabled, over the uninstrumented baseline.  Same-process
        # alternating best-of ratio, so it transfers across machines.
        "disabled_over_baseline": "higher",
    },
    "BENCH_faults.json": {
        # Correctness ratios of the chaos scenarios — deterministic by
        # construction (the benchmark asserts them at 1.0-style values),
        # gated so a silent contract break shows up as a regression even
        # if someone loosens the in-benchmark asserts.
        "rows[scenario=parity].rankings_exact": "higher",
        "rows[scenario=disk-errors].complete_frac": "higher",
        "rows[scenario=disk-errors].rankings_exact": "higher",
        "rows[scenario=shard-down].mean_coverage_frac": "higher",
        "rows[scenario=worker-kill].complete_frac": "higher",
        "rows[scenario=worker-kill].rankings_exact": "higher",
    },
    "BENCH_serving.json": {
        # Overload envelope of the open-loop front-end.  All ratios
        # against same-process control runs: sustainable load as a
        # fraction of the measured closed-loop capacity, goodput at 2x
        # overload as a fraction of the sweep's peak, and rankings
        # parity of everything answered under overload.  The shed-vs-
        # noshed comparison is asserted in-benchmark but not gated here:
        # the collapsed baseline's goodput is near zero, so its ratio is
        # too noisy to band.
        "sustainable_over_capacity": "higher",
        "overload.shed.goodput_ratio": "higher",
        "overload.shed.rankings_exact": "higher",
    },
}

_SELECTOR = re.compile(r"^(?P<name>[^\[]+)\[(?P<filters>[^\]]+)\]$")


def resolve(payload, path: str):
    """Walk a dot path; ``seg[key=value,...]`` picks a dict from a list."""
    node = payload
    for segment in path.split("."):
        match = _SELECTOR.match(segment)
        if match:
            node = node[match.group("name")]
            filters = dict(
                pair.split("=", 1) for pair in match.group("filters").split(",")
            )
            picked = [
                row
                for row in node
                if all(str(row.get(k)) == v for k, v in filters.items())
            ]
            if len(picked) != 1:
                raise KeyError(
                    f"{segment}: matched {len(picked)} rows, expected exactly 1"
                )
            node = picked[0]
        else:
            node = node[segment]
    return node


def check_file(name: str, baseline_dir: Path, current_dir: Path, tolerance: float):
    """Yield (metric, baseline, current, ok) tuples; raises on a missing
    current file (the benchmarks were supposed to emit it)."""
    baseline_path = baseline_dir / name
    current_path = current_dir / name
    if not current_path.exists():
        raise FileNotFoundError(
            f"{current_path} missing — did the benchmark emitting it run?"
        )
    baseline = json.loads(baseline_path.read_text())
    current = json.loads(current_path.read_text())
    for metric, direction in MANIFEST[name].items():
        base = float(resolve(baseline, metric))
        cur = float(resolve(current, metric))
        if direction == "higher":
            ok = cur >= base * (1.0 - tolerance)
        else:
            ok = cur <= base * (1.0 + tolerance)
        yield metric, direction, base, cur, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(__file__).parent / "baselines",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative regression before failing (default 0.30)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="FILE",
        help="gate only these BENCH_*.json names (repeatable)",
    )
    args = parser.parse_args(argv)

    names = args.only if args.only else sorted(MANIFEST)
    unknown = [n for n in names if n not in MANIFEST]
    if unknown:
        parser.error(f"no gate manifest for {unknown}; known: {sorted(MANIFEST)}")

    failures = 0
    for name in names:
        if not (args.baseline_dir / name).exists():
            print(f"{name}: no committed baseline — skipped (seed one to gate it)")
            continue
        try:
            results = list(
                check_file(name, args.baseline_dir, args.current_dir, args.tolerance)
            )
        except FileNotFoundError as exc:
            print(f"{name}: FAIL — {exc}")
            failures += 1
            continue
        for metric, direction, base, cur, ok in results:
            verdict = "ok" if ok else "REGRESSION"
            print(
                f"{name}: {metric} ({direction} is better) "
                f"baseline {base:.3f} -> current {cur:.3f}  {verdict}"
            )
            if not ok:
                failures += 1
    if failures:
        print(f"{failures} gated metric(s) regressed beyond "
              f"{args.tolerance:.0%} tolerance")
        return 1
    print("perf regression gate: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
