"""Place recommendation by comparing all four searchers.

The paper's second motivating application: given where a user wants to go
and what they want to do, find the travel histories of like-minded users.
This example runs the same query through GAT and all three baselines,
verifies they agree (they always must — they compute the same top-k), and
reports how much work each one did, the paper's central claim in
miniature.

Run:  python examples/place_recommendation.py
"""

import time

from repro import (
    CheckInGenerator,
    GATConfig,
    GATIndex,
    GATSearchEngine,
    GeneratorConfig,
    InvertedListSearch,
    IRTreeSearch,
    Query,
    RTreeSearch,
)
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig

# ----------------------------------------------------------------------
# A mid-sized synthetic city.
# ----------------------------------------------------------------------
config = GeneratorConfig(
    n_users=800,
    n_venues=2500,
    vocabulary_size=900,
    width_km=30.0,
    height_km=22.0,
    checkins_per_user_mean=16.0,
    seed=42,
)
db = CheckInGenerator(config).generate(name="reco-city")
print(f"city: {len(db)} trajectories, {db.n_points()} check-ins")

print("building indexes...")
t0 = time.perf_counter()
searchers = {
    "GAT": GATSearchEngine(GATIndex.build(db, GATConfig(depth=6, memory_levels=5))),
    "IL": InvertedListSearch(db),
    "RT": RTreeSearch(db),
    "IRT": IRTreeSearch(db),
}
print(f"  all four built in {time.perf_counter() - t0:.1f}s")

# ----------------------------------------------------------------------
# A realistic query: anchored at real check-ins, asking for the common
# activity types performed there (Table V defaults: |Q|=4, |q.Φ|=3).
# ----------------------------------------------------------------------
workload = QueryWorkloadGenerator(db, WorkloadConfig(seed=7))
query: Query = workload.query()
print("\nquery:")
for i, q in enumerate(query, start=1):
    acts = sorted(db.vocabulary.decode(q.activities))
    print(f"  q{i}: ({q.x:.2f}, {q.y:.2f}) km, activities {acts}")

# ----------------------------------------------------------------------
# Run everyone, verify agreement, compare work.
# ----------------------------------------------------------------------
k = 9
rankings = {}
print(f"\ntop-{k} by minimum match distance:")
for name, searcher in searchers.items():
    t0 = time.perf_counter()
    results = searcher.atsq(query, k)
    elapsed = time.perf_counter() - t0
    rankings[name] = [round(r.distance, 6) for r in results]
    stats = searcher.stats
    candidates = getattr(stats, "candidates_retrieved", "-")
    print(f"  {name:>3}: {elapsed * 1000:7.1f} ms   candidates={candidates}")

reference = rankings["IL"]
for name, distances in rankings.items():
    assert distances == reference, f"{name} disagreed with IL!"
print("\nall four methods returned identical top-k distances ✓")

best = searchers["GAT"].atsq(query, 3, explain=True)
print("\nrecommended reference trajectories (GAT, with matched stops):")
for rank, r in enumerate(best, start=1):
    tr = db.get(r.trajectory_id)
    print(f"  #{rank}: user trajectory {r.trajectory_id} "
          f"({len(tr)} check-ins), Dmm={r.distance:.2f}")
    for q, match in zip(query, r.matches):
        stops = [f"({tr[pos].x:.2f},{tr[pos].y:.2f})" for pos in match]
        print(f"       covers {sorted(db.vocabulary.decode(q.activities))} at {stops}")
