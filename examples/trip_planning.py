"""Trip planning with order-sensitive search (OATSQ).

The scenario from Section VI: a visitor has a fixed itinerary — morning
coffee, then a museum, then dinner, then live music — and wants reference
trajectories whose activities happened *in that order*.  An order-free
ATSQ can return trajectories that did dinner first and coffee last; OATSQ
cannot.

This example builds a synthetic city, plans an itinerary anchored at real
venues, and contrasts the two query semantics on the same query.

Run:  python examples/trip_planning.py
"""

import random

from repro import (
    GATConfig,
    GATIndex,
    GATSearchEngine,
    GeneratorConfig,
    CheckInGenerator,
    Query,
    QueryPoint,
)
from repro.core.evaluator import MatchEvaluator

# ----------------------------------------------------------------------
# A small synthetic city (deterministic seed).
# ----------------------------------------------------------------------
config = GeneratorConfig(
    n_users=400,
    n_venues=1200,
    vocabulary_size=500,
    width_km=24.0,
    height_km=18.0,
    checkins_per_user_mean=14.0,
    seed=2013,
)
db = CheckInGenerator(config).generate(name="trip-city")
print(f"city: {len(db)} users, {db.n_points()} check-ins")

index = GATIndex.build(db, GATConfig(depth=6, memory_levels=5))
engine = GATSearchEngine(index)

# ----------------------------------------------------------------------
# Build an itinerary by walking one real trajectory: four stops, in the
# order that user actually visited them, asking for one activity each.
# ----------------------------------------------------------------------
rng = random.Random(99)
anchor = next(
    tr for tr in db.trajectories if sum(1 for p in tr if p.activities) >= 4
)
stops = [p for p in anchor if p.activities][:4]
itinerary = Query(
    [
        QueryPoint(p.x, p.y, frozenset([min(p.activities)]))  # most common activity
        for p in stops
    ]
)
names = [sorted(db.vocabulary.decode(q.activities)) for q in itinerary]
print("\nitinerary (in visiting order):")
for i, (q, acts) in enumerate(zip(itinerary, names), start=1):
    print(f"  stop {i}: ({q.x:.2f}, {q.y:.2f}) km, wants {acts}")

# ----------------------------------------------------------------------
# Compare ATSQ and OATSQ rankings.
# ----------------------------------------------------------------------
k = 5
atsq = engine.atsq(itinerary, k)
oatsq = engine.oatsq(itinerary, k)

print(f"\ntop-{k} order-free (ATSQ):   ",
      [(r.trajectory_id, round(r.distance, 2)) for r in atsq])
print(f"top-{k} order-aware (OATSQ): ",
      [(r.trajectory_id, round(r.distance, 2)) for r in oatsq])

# Lemma 3 in action: Dmom >= Dmm for every trajectory; trajectories whose
# activity order disagrees with the itinerary pay a premium or drop out.
ev = MatchEvaluator()
print("\nLemma 3 check on the OATSQ results (Dmm <= Dmom):")
for r in oatsq:
    tr = db.get(r.trajectory_id)
    dmm = ev.dmm(itinerary, tr)
    print(f"  trajectory {r.trajectory_id}: Dmm={dmm:.2f} <= Dmom={r.distance:.2f}")

atsq_ids = {r.trajectory_id for r in atsq}
oatsq_ids = {r.trajectory_id for r in oatsq}
dropped = atsq_ids - oatsq_ids
if dropped:
    print(f"\ntrajectories good order-free but demoted by order: {sorted(dropped)}")
