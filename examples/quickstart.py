"""Quickstart: build a database, index it, run an ATSQ and an OATSQ —
then serve a whole batch concurrently through the QueryService.

Reproduces the paper's Figure 1 scenario in miniature: a tourist plans to
visit three places with desired activities and wants the most similar
activity trajectories as references.

Run:  python examples/quickstart.py
"""

from repro import (
    GATConfig,
    GATIndex,
    GATSearchEngine,
    Query,
    QueryRequest,
    QueryService,
    ShardedGATIndex,
    ShardedQueryService,
    TrajectoryDatabase,
)

# ----------------------------------------------------------------------
# 1. A tiny activity-trajectory database.  In the raw form each point is
#    (x_km, y_km, [activity names]); TrajectoryDatabase.from_raw builds the
#    frequency-ordered vocabulary automatically.
# ----------------------------------------------------------------------
raw_trajectories = [
    # Trajectory 0: brunch downtown, then a museum, then a jazz bar.
    [
        (1.0, 1.0, ["brunch", "coffee"]),
        (1.5, 1.2, ["museum"]),
        (2.0, 1.8, ["jazz", "cocktails"]),
    ],
    # Trajectory 1: the foodie loop.
    [
        (1.1, 0.9, ["brunch"]),
        (1.3, 1.1, ["streetfood", "coffee"]),
        (2.1, 1.9, ["cocktails"]),
        (2.4, 2.2, ["jazz"]),
    ],
    # Trajectory 2: sports day far from downtown.
    [
        (8.0, 8.0, ["hiking"]),
        (8.5, 8.6, ["climbing", "picnic"]),
    ],
    # Trajectory 3: a close geometric match that lacks the activities —
    # the paper's motivating trap for purely spatial search.
    [
        (1.0, 1.0, ["parking"]),
        (1.5, 1.2, ["phonecall"]),
        (2.0, 1.8, ["parking"]),
    ],
]

db = TrajectoryDatabase.from_raw(raw_trajectories, name="quickstart")
print(f"database: {len(db)} trajectories, {db.n_points()} points, "
      f"{len(db.vocabulary)} distinct activities")

# ----------------------------------------------------------------------
# 2. Build the GAT index (the paper's defaults are depth=8, memory_levels=6;
#    a toy database only needs a shallow grid).
#
#    The engine scores candidates through the vectorized NumPy kernels
#    when NumPy is importable (kernel="auto"); pass kernel="scalar" for
#    the from-the-paper reference implementations — rankings and pruning
#    counters are identical either way, the vectorized kernel is just
#    4-7x faster on paper-scale data (see benchmarks/bench_kernel_scoring.py).
# ----------------------------------------------------------------------
index = GATIndex.build(db, GATConfig(depth=4, memory_levels=3))
engine = GATSearchEngine(index)  # kernel="auto" | "scalar" | "vectorized"

# ----------------------------------------------------------------------
# 3. The tourist's plan: three locations, each with desired activities.
# ----------------------------------------------------------------------
query = Query.from_named(
    db.vocabulary,
    [
        (1.0, 1.0, ["brunch"]),
        (1.4, 1.1, ["coffee"]),
        (2.0, 1.9, ["jazz", "cocktails"]),
    ],
)

print("\nATSQ (order-free) top-3, with the matched points:")
for rank, result in enumerate(engine.atsq(query, k=3, explain=True), start=1):
    print(f"  #{rank}: trajectory {result.trajectory_id} "
          f"Dmm={result.distance:.3f} matches={result.matches}")

print("\nOATSQ (order-sensitive) top-3:")
for rank, result in enumerate(engine.oatsq(query, k=3, explain=True), start=1):
    print(f"  #{rank}: trajectory {result.trajectory_id} "
          f"Dmom={result.distance:.3f} matches={result.matches}")

# Trajectory 3 sits right on the query locations but can never appear: it
# covers none of the requested activities.  Trajectory 2 is activity-poor
# AND far away.  Trajectories 0 and 1 compete on match distance.
#
# The work counters below belong to the OATSQ just run.  Note the disk
# reads: the engine's shared LRU caches stay warm across queries, so a
# repeat of a similar query costs little or no counted I/O — the first
# (cold) query paid for the APL fetches.
stats = engine.stats
print(f"\nengine work (warm repeat query): {stats.cells_popped} cells popped, "
      f"{stats.candidates_retrieved} candidates, "
      f"{stats.tas_pruned} TAS-pruned, {stats.disk_reads} disk reads")

# ----------------------------------------------------------------------
# 4. Batched serving: the engine is stateless per query, so one
#    QueryService fans a whole batch out over a thread pool.  Responses
#    come back in request order, identical to a sequential loop.
# ----------------------------------------------------------------------
service = QueryService(engine, max_workers=4)
batch = [
    QueryRequest(query, k=3),                        # the tourist's ATSQ
    QueryRequest(query, k=3, order_sensitive=True),  # ... and as an OATSQ
    QueryRequest(
        Query.from_named(db.vocabulary, [(1.2, 1.0, ["coffee", "streetfood"])]),
        k=2,
    ),
]
responses = service.search_many(batch)
print("\nbatched serving (QueryService, 4 workers):")
for i, resp in enumerate(responses, start=1):
    label = "Dmom" if resp.request.order_sensitive else "Dmm"
    top = ", ".join(f"Tr{r.trajectory_id}({label}={r.distance:.2f})"
                    for r in resp.results)
    print(f"  request {i}: {top}  [{resp.latency_s * 1000:.2f} ms]")

# The service memoises ranked results by query signature: repeating a
# request is a pure LRU hit (zero engine work, zero disk reads).  The
# cache is invalidated automatically when GATIndex.insert_trajectory
# bumps the index version.
repeat = service.search(query, k=3)
svc = service.stats()
print(f"\nrepeat of request 1: {repeat.stats.rounds} engine rounds "
      f"(served from the result cache)")
print(f"service: {svc.queries} queries, {svc.qps:.0f} QPS, "
      f"p95 {svc.latency_p95_s * 1000:.2f} ms, "
      f"APL cache hit rate {svc.apl_cache_hit_rate:.0%}, "
      f"result cache {svc.result_cache_hits}/{svc.result_cache_lookups} hits")

# ----------------------------------------------------------------------
# 5. Scaling out: partition the database into per-shard GAT indexes and
#    fan each query out across them.  Trajectories are sharded whole, so
#    the merged top-k is byte-identical to the single index — compare the
#    rankings below with step 3.  executor="thread" overlaps the shards'
#    disk I/O; executor="process" runs them in worker processes (GIL-free
#    CPU on multi-core machines); 2 shards is plenty for a toy database.
# ----------------------------------------------------------------------
sharded = ShardedGATIndex.build(db, n_shards=2, config=GATConfig(depth=4, memory_levels=3))
with ShardedQueryService(sharded, executor="thread") as shard_service:
    print(f"\nsharded serving ({sharded!r}):")
    for label, order_sensitive in (("ATSQ", False), ("OATSQ", True)):
        response = shard_service.search(query, k=3, order_sensitive=order_sensitive)
        top = ", ".join(f"Tr{r.trajectory_id}({r.distance:.2f})" for r in response.results)
        print(f"  {label} top-3 across shards: {top}  "
              f"[{response.stats.disk_reads} disk reads over "
              f"{sharded.n_shards} shard disks]")
