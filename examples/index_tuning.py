"""Index tuning: grid granularity, memory split, and sketch size.

Walks the three GAT build-time knobs the paper discusses in Section IV and
Figure 8, printing the trade-offs on a synthetic dataset:

* grid depth d (partition granularity)  — query time vs memory;
* memory_levels (HICL memory/disk split) — memory vs disk reads per query;
* sketch_intervals M (TAS size)         — sketch memory vs false-positive
  rate (candidates that survive TAS but die at the APL check).

Run:  python examples/index_tuning.py
"""

import time

from repro import CheckInGenerator, GATConfig, GATIndex, GATSearchEngine, GeneratorConfig
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.hicl import memory_level_budget

config = GeneratorConfig(
    n_users=600,
    n_venues=2000,
    vocabulary_size=800,
    width_km=25.0,
    height_km=20.0,
    checkins_per_user_mean=14.0,
    seed=5,
)
db = CheckInGenerator(config).generate(name="tuning-city")
queries = QueryWorkloadGenerator(db, WorkloadConfig(seed=11)).queries(4)
K = 9


def run_batch(engine):
    t0 = time.perf_counter()
    tas_pruned = apl_pruned = disk_reads = 0
    for q in queries:
        engine.atsq(q, K)
        tas_pruned += engine.stats.tas_pruned
        apl_pruned += engine.stats.apl_pruned
        disk_reads += engine.stats.disk_reads
    per_query = (time.perf_counter() - t0) / len(queries)
    return per_query, tas_pruned, apl_pruned, disk_reads


print(f"dataset: {len(db)} trajectories, {db.n_points()} points\n")

# ----------------------------------------------------------------------
# 1. Grid depth (Figure 8).
# ----------------------------------------------------------------------
print("1) grid depth (partition granularity)")
print(f"   {'depth':>5}  {'cells':>9}  {'s/query':>8}  {'index MB':>9}")
for depth in (4, 5, 6, 7):
    index = GATIndex.build(db, GATConfig(depth=depth, memory_levels=min(6, depth)))
    engine = GATSearchEngine(index)
    per_query, *_ = run_batch(engine)
    side = 1 << depth
    print(f"   {depth:>5}  {side}x{side:<5}  {per_query:8.4f}  "
          f"{index.memory_cost_bytes() / 1e6:9.2f}")

# ----------------------------------------------------------------------
# 2. HICL memory/disk split.
# ----------------------------------------------------------------------
print("\n2) HICL memory levels (rest goes to simulated disk)")
print(f"   {'mem levels':>10}  {'s/query':>8}  {'disk reads/query':>17}")
for memory_levels in (2, 4, 6):
    index = GATIndex.build(db, GATConfig(depth=6, memory_levels=memory_levels))
    engine = GATSearchEngine(index)
    per_query, _t, _a, disk_reads = run_batch(engine)
    print(f"   {memory_levels:>10}  {per_query:8.4f}  {disk_reads / len(queries):17.1f}")

budget_bytes = 64 * 1024
h = memory_level_budget(budget_bytes, len(db.vocabulary))
print(f"   (paper's budget formula: {budget_bytes} B over {len(db.vocabulary)} "
      f"activities -> keep {h} level(s) in memory)")

# ----------------------------------------------------------------------
# 3. TAS sketch intervals.
# ----------------------------------------------------------------------
print("\n3) TAS sketch intervals M (8*M bytes per trajectory)")
print(f"   {'M':>3}  {'TAS-pruned':>10}  {'APL-pruned (false pos.)':>24}")
for m in (1, 2, 4, 8):
    index = GATIndex.build(db, GATConfig(depth=6, memory_levels=6, sketch_intervals=m))
    engine = GATSearchEngine(index)
    _pq, tas_pruned, apl_pruned, _d = run_batch(engine)
    print(f"   {m:>3}  {tas_pruned:>10}  {apl_pruned:>24}")
print("\nlarger M catches more non-matches in memory (higher TAS-pruned,"
      "\nlower APL-pruned), at 8*M bytes per trajectory — the paper's trade-off.")
